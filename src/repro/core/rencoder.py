"""REncoder — the paper's core contribution (Section III).

REncoder answers range membership by storing the implicit prefix segment
tree of the key set in a :class:`~repro.core.rbf.RangeBloomFilter`:

* **Insertion** (Algorithms 1–2): each key's prefixes are grouped into
  mini-trees of ``group_bits`` consecutive levels, each mini-tree path is
  encoded as a Bitmap Tree, and the BT is OR-ed into the RBF at the ``k``
  positions selected by hashing the *hash prefix* (the key bits above the
  mini-tree).
* **Query** (Algorithms 3–4): the target range is dyadically decomposed
  into prefix-aligned sub-ranges; each sub-range is verified by (a)
  checking every *stored ancestor level* of its prefix and (b) a
  depth-first "doubting" traversal from the prefix down to the deepest
  stored level.  One RBF fetch serves every node probe that lands in the
  same mini-tree — the locality that makes REncoder fast.
* **Adaptive stored levels** (Section III-C): with a fixed memory budget,
  FPR is near-minimal when the RBF load factor ``P1`` is about 0.5, so
  construction inserts levels in rounds and stops at the round where ``P1``
  reaches the target.  The base REncoder always stores the mandatory bottom
  ``log2(Rmax) + 1`` levels (needed for the Section IV error bound) and
  grows upward; the SS/SE variants in :mod:`repro.core.variants` choose
  different starting levels and directions.

Implementation notes
--------------------
* Levels are numbered by prefix length: level ``l`` holds the length-``l``
  prefixes; level ``key_bits`` is the keys themselves.
* A prefix of length ``l`` lives in group ``g = ceil(l / B)`` at mini-tree
  node ``2^d | (last d bits)`` where ``d = l - (g-1)B``.
* Group-boundary levels (``l % B == 0``) are additionally mirrored into the
  *root bit* of the next group's mini-tree, exactly as in the paper's
  Figure 2 insertion example; queries use the mirror to zero out a fetched
  BT whose root proves the hash prefix was never inserted.
* Unstored levels answer "unknown": queries treat them as present and the
  doubting traversal skips straight to the next stored level (with a
  conservative expansion cap so adversarially wide gaps degrade to a
  harmless ``True`` rather than exponential work).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.bitmap_tree import BitmapTreeCodec
from repro.core.decompose import decompose, decompose_batch
from repro.core.rbf import FetchScratch, RangeBloomFilter
from repro.filters.base import RangeFilter, as_key_array
from repro.hashing.mix64 import seeds_for
from repro.telemetry.tracing import current_span

__all__ = ["REncoder", "FetchCache", "DEFAULT_RMAX"]

#: The paper stores at most ``log2(64) + 1`` levels mandatorily because
#: "filters are more suitable for range queries of R <= 64" (Section III-C).
DEFAULT_RMAX = 64


class FetchCache:
    """Per-query-batch cache of combined Bitmap Trees.

    Keyed by ``(group, hash prefix)`` — one entry per mini-tree window —
    so every node probe that lands in an already-fetched mini-tree costs a
    dict lookup instead of an RBF fetch.  This is what makes the paper's
    "one memory access per mini-tree" locality real on the batch path: the
    doubting traversal and adjacent dyadic sub-ranges repeatedly probe the
    same mini-tree, and all of them share one fetch.

    Entries live in per-group *sorted arrays* (hash prefixes plus a row
    matrix of BTs) rather than a python dict, so a whole level's worth of
    lookups is one ``searchsorted`` gather.  The dict-like subset
    (``get`` / ``__setitem__``) the scalar probe path uses is also
    provided, so a scalar doubting traversal can transparently reuse a
    batch's cache.  ``probes`` counts lookups, ``fetches`` counts RBF
    fetches actually performed; the hit rate is their gap.

    A cache may be *reused across batches* (pass it to
    ``query_range_many(..., cache=...)``) to keep hot mini-trees warm.
    Safety against interleaved inserts comes from the RBF's generation
    counter: the cache records the generation it was filled against
    (:meth:`ensure`) and drops everything when it no longer matches, so
    it can never serve a mini-tree from before an insert — which could
    otherwise manifest as a *false negative* on a freshly inserted key.
    """

    __slots__ = ("probes", "fetches", "generation", "_groups", "scratch")

    def __init__(self) -> None:
        #: group -> (sorted hash prefixes, matching rows of combined BTs)
        self._groups: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.probes = 0
        self.fetches = 0
        #: RBF generation the entries are valid for (None = empty/unbound).
        self.generation: "int | None" = None
        #: Reusable fetch_bt_many work buffers — a cache carried across
        #: batches amortises them, so steady-state probing stops
        #: allocating the large per-level gather temporaries.
        self.scratch = FetchScratch()

    def ensure(self, generation: int) -> None:
        """Bind to an RBF generation, invalidating stale entries.

        Called by the probe paths before any lookup.  First use binds the
        cache; a later mismatch (the filter was inserted into since the
        entries were fetched) drops all entries and rebinds.  The
        counters survive — a stale entry was still fetched once.
        """
        if self.generation != generation:
            if self.generation is not None:
                self._groups.clear()
            self.generation = generation

    @property
    def hits(self) -> int:
        """Probes answered without touching the RBF."""
        return self.probes - self.fetches

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from the cache (0.0 when unused)."""
        return self.hits / self.probes if self.probes else 0.0

    def __len__(self) -> int:
        return sum(hps.size for hps, _ in self._groups.values())

    # vectorised interface used by the batch probe path ------------------
    def lookup(
        self, group: int, uniq_hps: np.ndarray
    ) -> tuple["np.ndarray | None", np.ndarray]:
        """Gather cached BT rows for sorted unique hash prefixes.

        Returns ``(rows, found)``: ``rows[i]`` is valid only where
        ``found[i]`` is True; ``rows`` is None when the group is empty.
        Does not touch the counters — callers account whole batches.
        """
        entry = self._groups.get(group)
        if entry is None:
            return None, np.zeros(uniq_hps.size, dtype=bool)
        hps, rows = entry
        pos = np.searchsorted(hps, uniq_hps)
        pos = np.minimum(pos, hps.size - 1)
        return rows[pos], hps[pos] == uniq_hps

    def store(
        self, group: int, new_hps: np.ndarray, new_rows: np.ndarray
    ) -> None:
        """Merge freshly fetched (sorted, previously absent) entries."""
        entry = self._groups.get(group)
        if entry is None:
            self._groups[group] = (new_hps, new_rows)
            return
        hps = np.concatenate([entry[0], new_hps])
        rows = np.concatenate([entry[1], new_rows])
        order = np.argsort(hps, kind="stable")
        self._groups[group] = (hps[order], rows[order])

    # dict-like interface used by the scalar probe path -----------------
    def get(self, key: tuple[int, int]) -> "np.ndarray | None":
        """Scalar lookup of a ``(group, hash_prefix)`` entry (or None)."""
        self.probes += 1
        group, hp = key
        entry = self._groups.get(group)
        if entry is None:
            return None
        hps, rows = entry
        i = int(np.searchsorted(hps, np.uint64(hp)))
        if i < hps.size and int(hps[i]) == hp:
            return rows[i]
        return None

    def __setitem__(self, key: tuple[int, int], bt: np.ndarray) -> None:
        self.fetches += 1
        group, hp = key
        self.store(
            group,
            np.array([hp], dtype=np.uint64),
            np.asarray(bt, dtype=np.uint64)[None, :],
        )


class REncoder(RangeFilter):
    """The base REncoder (use case C: no sampling, bounded error).

    Parameters
    ----------
    keys:
        The key set (any iterable of non-negative ints; deduplicated).
    total_bits:
        Memory budget.  If ``None``, ``bits_per_key * len(keys)`` is used.
    bits_per_key:
        Budget expressed per key (the BPK axis of every figure).
    key_bits:
        Key width ``L`` (default 64, as in the paper).
    k:
        Hash functions of the RBF, or ``"auto"`` (default).  Auto applies
        the paper's Corollaries 3–4: prefer spending memory on more stored
        levels over more hash copies, so ``k = ln2 · bpk / (mandatory
        levels + 1)`` clamped to [1, 5] — 1–2 for the base REncoder (seven
        mandatory levels), higher for SS/SE whose plan starts from a
        single discriminating level.
    group_bits:
        ``B`` — prefix levels per Bitmap Tree.  8 reproduces the paper's
        512-bit AVX configuration; 4 reproduces the worked example.
    rmax:
        Maximum range size the filter must answer with full accuracy; the
        bottom ``log2(rmax) + 1`` levels are always stored.
    levels_per_round:
        ``n_r`` — how many optional levels each adaptive round inserts.
    target_p1:
        Load-factor target at which adaptive insertion stops (paper: 0.5).
    seed:
        Hash seed (reproducibility).
    max_expansion:
        Cap on how many skipped-level descendants a single sub-range
        verification may enumerate before conservatively answering True.
    ancestor_checks:
        Whether verification first probes every stored ancestor level of
        a sub-range prefix (Section III-C's "additional queries").  On by
        default; exposed for the ablation bench, which quantifies how
        much of REncoder's FPR comes from this step.
    """

    name = "REncoder"

    def __init__(
        self,
        keys: Iterable[int] | np.ndarray,
        total_bits: int | None = None,
        *,
        bits_per_key: float = 16.0,
        key_bits: int = 64,
        k: "int | str" = "auto",
        group_bits: int = 8,
        rmax: int = DEFAULT_RMAX,
        levels_per_round: int = 1,
        target_p1: float = 0.5,
        seed: int = 0,
        max_expansion: int = 4096,
        ancestor_checks: bool = True,
        layout: str = "flat",
    ) -> None:
        super().__init__(key_bits)
        self.ancestor_checks = ancestor_checks
        if rmax < 1:
            raise ValueError(f"rmax must be positive, got {rmax}")
        if levels_per_round < 1:
            raise ValueError(
                f"levels_per_round must be positive, got {levels_per_round}"
            )
        if not 0.0 < target_p1 <= 1.0:
            raise ValueError(f"target_p1 must be in (0, 1], got {target_p1}")

        key_arr = as_key_array(keys)
        if key_arr.size and int(key_arr[-1]) >= (1 << key_bits):
            raise ValueError(
                f"key {int(key_arr[-1])} outside {key_bits}-bit domain"
            )
        self.n_keys = int(key_arr.size)
        if total_bits is None:
            total_bits = max(64, int(round(bits_per_key * max(1, self.n_keys))))
        self.rmax = rmax
        self.levels_per_round = levels_per_round
        self.target_p1 = target_p1
        self.max_expansion = max_expansion
        self.codec = BitmapTreeCodec(group_bits)
        self.group_bits = group_bits
        self.num_groups = (key_bits + group_bits - 1) // group_bits
        # Per-group tags decorrelate hash prefixes of different lengths
        # before they enter the shared hash family.
        self._group_tags = seeds_for(self.num_groups + 2, seed ^ 0x7461_6773)
        self._stored = np.zeros(key_bits + 1, dtype=bool)
        self._zero_bt = np.zeros(self.codec.words, dtype=np.uint64)
        # The zero BT is handed out through probe caches; freeze it so a
        # caller mutating a fetched BT raises instead of corrupting state.
        self._zero_bt.setflags(write=False)

        mandatory, optional = self._plan_levels(key_arr)
        if k == "auto":
            # Corollaries 3-4: favour stored levels over hash copies — but
            # never drop below two hashes, which Theorem 6 (queries close
            # to keys) still needs for correlated robustness.
            bpk = total_bits / max(1, self.n_keys)
            k = min(5, max(2, int(0.6931 * bpk / (len(mandatory) + 1))))
        elif not (isinstance(k, int) and k >= 1):
            raise ValueError(f'k must be a positive int or "auto", got {k!r}')
        self.rbf = RangeBloomFilter(
            total_bits, k, group_bits, seed, layout=layout
        )
        self._build(key_arr, mandatory, optional)
        self._finalise_levels()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _plan_levels(self, keys: np.ndarray) -> tuple[list[int], list[int]]:
        """Mandatory levels, then optional levels in insertion order.

        Base REncoder: the bottom ``log2(rmax) + 1`` levels are mandatory
        (deepest first), then optional levels continue upward toward the
        root.  Overridden by the SS/SE variants.
        """
        depth = min(self.key_bits, (self.rmax - 1).bit_length() + 1)
        lowest = self.key_bits - depth + 1
        mandatory = list(range(self.key_bits, lowest - 1, -1))
        optional = list(range(lowest - 1, 0, -1))
        return mandatory, optional

    def _build(
        self,
        keys: np.ndarray,
        mandatory: Sequence[int],
        optional: Sequence[int],
    ) -> None:
        for level in mandatory:
            self._insert_level_bulk(keys, level)
        if keys.size:
            pos = 0
            while pos < len(optional) and self.rbf.p1 < self.target_p1:
                for level in optional[pos : pos + self.levels_per_round]:
                    self._insert_level_bulk(keys, level)
                pos += self.levels_per_round
        else:
            # No keys: still mark the planned optional levels as stored so
            # queries prune on their (all-zero) bits.
            for level in optional:
                self._stored[level] = True
        self.final_p1 = self.rbf.p1

    def _insert_level_bulk(self, keys: np.ndarray, level: int) -> None:
        """Insert every key's length-``level`` prefix, vectorised."""
        if not 1 <= level <= self.key_bits:
            raise ValueError(f"level {level} outside [1, {self.key_bits}]")
        self._stored[level] = True
        if keys.size == 0:
            return
        prefixes = np.unique(keys >> np.uint64(self.key_bits - level))
        group, depth, hp_len = self._locate(level)
        hp = (
            prefixes >> np.uint64(depth)
            if hp_len
            else np.zeros(len(prefixes), dtype=np.uint64)
        )
        tagged = hp ^ np.uint64(self._group_tags[group])
        nodes = np.uint64(1 << depth) | (
            prefixes & np.uint64((1 << depth) - 1)
        )
        self.rbf.bulk_insert_nodes(tagged, nodes)
        # Mirror a group-boundary level into the next group's root bit
        # (the paper's BT always carries its mini-tree root).
        if depth == self.group_bits and level < self.key_bits:
            mirror_tag = np.uint64(self._group_tags[group + 1])
            ones = np.ones(len(prefixes), dtype=np.uint64)
            self.rbf.bulk_insert_nodes(prefixes ^ mirror_tag, ones)

    def insert(self, key: int) -> None:
        """Insert one key's stored-level prefixes (incremental updates).

        The stored-level plan is fixed at construction; the paper rebuilds
        filters on LSM merges, but single inserts are convenient for the
        memtable-flush path of the storage substrates.
        """
        if not 0 <= key < (1 << self.key_bits):
            raise ValueError(f"key {key} outside {self.key_bits}-bit domain")
        for level in self._stored_sorted:
            prefix = key >> (self.key_bits - level)
            group, depth, hp_len = self._locate(level)
            hp = prefix >> depth if hp_len else 0
            node = (1 << depth) | (prefix & ((1 << depth) - 1))
            bt = np.zeros(self.codec.words, dtype=np.uint64)
            self.codec.set_node(bt, node)
            self.rbf.insert_bt(hp ^ self._group_tags[group], bt)
            if depth == self.group_bits and level < self.key_bits:
                mirror = np.zeros(self.codec.words, dtype=np.uint64)
                self.codec.set_node(mirror, 1)
                self.rbf.insert_bt(prefix ^ self._group_tags[group + 1], mirror)
        self.n_keys += 1

    def _finalise_levels(self) -> None:
        stored = np.flatnonzero(self._stored)
        self._stored_sorted = [int(l) for l in stored if l >= 1]
        if not self._stored_sorted:
            raise RuntimeError("REncoder built with no stored levels")
        self._deepest = self._stored_sorted[-1]
        self._shallowest = self._stored_sorted[0]
        # next stored level strictly deeper than l, for the skip-DFS.
        self._next_stored = [0] * (self.key_bits + 1)
        nxt = 0
        for l in range(self.key_bits, -1, -1):
            self._next_stored[l] = nxt
            if self._stored[l]:
                nxt = l
        # The level plan is baked into any fused kernel's tables; drop it.
        self._kernel_cache = None

    def _locate(self, level: int) -> tuple[int, int, int]:
        """(group, depth-in-group, hash-prefix length) of a level."""
        group = (level + self.group_bits - 1) // self.group_bits
        hp_len = (group - 1) * self.group_bits
        return group, level - hp_len, hp_len

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    #: Cumulative fetch-cache statistics over all batch queries (class
    #: defaults so deserialized/unioned instances read as zero).
    cache_probes = 0
    cache_fetches = 0

    def query_range(self, lo: int, hi: int) -> bool:
        """One-sided range membership for ``[lo, hi]`` (Algorithm 3)."""
        self._check_range(lo, hi)
        cache: dict[tuple[int, int], np.ndarray] = {}
        return any(
            self._verify(prefix, length, cache)
            for prefix, length in decompose(lo, hi, self.key_bits)
        )

    def query_point(self, key: int) -> bool:
        """Point membership = degenerate range query on ``[key, key]``."""
        self._check_range(key, key)
        return self._verify(key, self.key_bits, {})

    def _verify(
        self,
        prefix: int,
        length: int,
        cache: "dict[tuple[int, int], np.ndarray] | FetchCache",
    ) -> bool:
        """Verification stage for one sub-range prefix.

        Checks every stored ancestor level first (the paper's "additional
        queries" optimisation), then runs the doubting DFS from the prefix
        down to the deepest stored level.
        """
        if length == 0:
            # Whole-domain query: non-empty iff any key was inserted.
            return self.n_keys > 0
        if self.ancestor_checks:
            for level in self._stored_sorted:
                if level >= length:
                    break
                if not self._probe(prefix >> (length - level), level, cache):
                    return False
        if length > self._deepest:
            # Nothing stored below; the surviving ancestors are our answer.
            return True
        return self._descend(prefix, length, cache)

    def _descend(
        self,
        prefix: int,
        length: int,
        cache: "dict[tuple[int, int], np.ndarray] | FetchCache",
    ) -> bool:
        """Doubting DFS from ``(prefix, length)`` to the deepest level."""
        budget = self.max_expansion
        stack: list[tuple[int, int]] = [(prefix, length)]
        while stack:
            node_prefix, level = stack.pop()
            if self._stored[level] and not self._probe(
                node_prefix, level, cache
            ):
                continue
            if level >= self._deepest:
                return True
            nxt = self._next_stored[level]
            gap = nxt - level
            budget -= 1 << gap
            if budget < 0:
                return True  # conservative: never a false negative
            base = node_prefix << gap
            for ext in range((1 << gap) - 1, -1, -1):
                stack.append((base | ext, nxt))
        return False

    # ------------------------------------------------------------------
    # batch queries
    # ------------------------------------------------------------------
    #: Batch queries on this filter can route through the fused kernels
    #: (repro.core.kernels); storage layers use this to pass ``engine=``.
    supports_kernels = True

    def _kernel_for(self, cache: "FetchCache | None", engine: "str | None"):
        """Resolve the fused kernel for one batch call (None = legacy).

        An explicit ``cache=`` selects the legacy FetchCache engine —
        carrying mini-trees across batches is that engine's feature, so
        combining it with a kernel backend is a contradiction and raises.
        Otherwise the backend comes from ``engine=`` / :func:`configure`
        / ``REPRO_KERNELS`` (see :mod:`repro.core.kernels`).
        """
        if cache is not None:
            if engine not in (None, "legacy"):
                raise ValueError(
                    "cache= is a legacy-engine feature; "
                    f"drop it or pass engine='legacy', not {engine!r}"
                )
            return None
        from repro.core import kernels

        return kernels.get_kernel(self, engine)

    def query_range_many(
        self,
        ranges,
        *,
        cache: "FetchCache | None" = None,
        engine: "str | None" = None,
    ) -> np.ndarray:
        """Batch :meth:`query_range` — bit-identical, vectorised.

        By default the batch runs on a fused kernel
        (:mod:`repro.core.kernels`): decomposition, hash mixing and RBF
        bit tests in one pass, compiled when numba is available.
        ``engine=`` picks the backend explicitly (``"numba"`` /
        ``"numpy"`` / ``"legacy"``); passing ``cache=`` selects the
        legacy engine below.

        On the legacy engine, the whole batch is dyadically decomposed at once
        (:func:`~repro.core.decompose.decompose_batch`), the ancestor-level
        checks run level-by-level over flat arrays (one
        :meth:`~repro.core.rbf.RangeBloomFilter.fetch_bt_many` gather per
        level for the mini-trees not already in the batch's
        :class:`FetchCache`), and only the few sub-ranges that survive
        every ancestor probe fall back to the scalar doubting traversal —
        which reuses the same cache, so its probes are almost always dict
        hits.  Accepts any ``(n, 2)``-shaped sequence of ``(lo, hi)``
        pairs and returns a boolean array.

        ``cache`` lets a caller carry one :class:`FetchCache` across
        batches (warm mini-trees); omitted, each batch gets a fresh one.
        A reused cache is generation-checked against the RBF, so an
        insert between batches invalidates it instead of serving stale
        mini-trees.
        """
        los, his = self._split_ranges(ranges)
        n = los.size
        answers = np.zeros(n, dtype=bool)
        if n == 0:
            return answers
        top = (1 << self.key_bits) - 1
        if (los > his).any() or int(his.max()) > top:
            raise ValueError(
                f"invalid range in batch for {self.key_bits}-bit keys"
            )
        kernel = self._kernel_for(cache, engine)
        if kernel is not None:
            return kernel.range_many(los, his)
        cache = cache if cache is not None else FetchCache()
        qidx, prefixes, lengths = decompose_batch(los, his, self.key_bits)
        whole = lengths == 0
        if whole.any():
            answers[qidx[whole]] = self.n_keys > 0
            keep = ~whole
            qidx, prefixes, lengths = qidx[keep], prefixes[keep], lengths[keep]
        alive = np.ones(lengths.size, dtype=bool)
        if self.ancestor_checks and lengths.size:
            max_len = int(lengths.max())
            for level in self._stored_sorted:
                if level >= max_len:
                    break
                sel = np.flatnonzero(alive & (lengths > level))
                if sel.size == 0:
                    continue
                ancestors = prefixes[sel] >> (
                    lengths[sel] - level
                ).astype(np.uint64)
                ok = self._probe_many(ancestors, level, cache)
                alive[sel[~ok]] = False
        # Sub-ranges below everything stored are decided by their
        # ancestors alone.
        deep = lengths > self._deepest
        answers[qidx[alive & deep]] = True
        undecided = np.flatnonzero(alive & ~deep)
        if undecided.size:
            self._descend_many(
                qidx[undecided],
                prefixes[undecided],
                lengths[undecided],
                answers,
                cache,
            )
        self._absorb_cache_stats(cache)
        return answers

    def _descend_many(
        self,
        qidx: np.ndarray,
        prefixes: np.ndarray,
        lengths: np.ndarray,
        answers: np.ndarray,
        cache: FetchCache,
    ) -> None:
        """Doubting traversal for a batch of sub-ranges, level-synchronous.

        The scalar :meth:`_descend` answers True iff either some
        root-to-deepest path survives every stored-level probe or the
        expansion budget is exhausted — both conditions independent of
        traversal order.  This runs the same traversal breadth-first over
        the whole batch: one vectorised probe per level for the entire
        frontier, expansion by ``gap`` bits to the next stored level, and
        a per-sub-range budget identical to the scalar path's.  Updates
        ``answers`` in place (True only — a sub-range can never veto its
        query).
        """
        m = qidx.size
        deepest = self._deepest
        budget = np.full(m, self.max_expansion, dtype=np.int64)
        done = np.zeros(m, dtype=bool)
        # Frontier nodes bucketed by level; initial pieces enter at their
        # own length, expansions land on the next stored level.
        pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        for level in np.unique(lengths):
            sel = np.flatnonzero(lengths == level)
            pending[int(level)] = [(sel, prefixes[sel])]
        for level in range(int(lengths.min()), deepest + 1):
            bucket = pending.pop(level, None)
            if not bucket:
                continue
            pid = np.concatenate([b[0] for b in bucket])
            pfx = np.concatenate([b[1] for b in bucket])
            live = ~done[pid] & ~answers[qidx[pid]]
            pid, pfx = pid[live], pfx[live]
            if pid.size == 0:
                continue
            if self._stored[level]:
                ok = self._probe_many(pfx, level, cache)
                pid, pfx = pid[ok], pfx[ok]
                if pid.size == 0:
                    continue
            if level >= deepest:
                done[pid] = True
                answers[qidx[pid]] = True
                continue
            nxt = self._next_stored[level]
            gap = nxt - level
            # Clamp the per-node cost: anything beyond the budget triggers
            # the same conservative True the scalar path returns.
            cost = min(1 << gap, self.max_expansion + 1)
            np.subtract.at(budget, pid, cost)
            exhausted = budget[pid] < 0
            if exhausted.any():
                hit = pid[exhausted]
                done[hit] = True
                answers[qidx[hit]] = True
                pid, pfx = pid[~exhausted], pfx[~exhausted]
                if pid.size == 0:
                    continue
            ext = np.arange(1 << gap, dtype=np.uint64)
            children = (pfx[:, None] << np.uint64(gap)) | ext[None, :]
            pending.setdefault(nxt, []).append(
                (np.repeat(pid, 1 << gap), children.ravel())
            )

    def query_point_many(
        self,
        keys,
        *,
        cache: "FetchCache | None" = None,
        engine: "str | None" = None,
    ) -> np.ndarray:
        """Batch :meth:`query_point` — bit-identical, vectorised.

        Routed through the fused kernels exactly like
        :meth:`query_range_many` (``engine=`` picks the backend, an
        explicit ``cache=`` selects the legacy engine).  On the legacy
        engine, a point query probes one stored level at a time along the
        key's prefix path, so the whole batch runs level-by-level with no
        scalar fallback at all; ``cache`` carries a generation-checked
        :class:`FetchCache` across batches.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        n = keys.size
        if n == 0:
            return np.zeros(0, dtype=bool)
        if self.key_bits < 64 and int(keys.max()) >= (1 << self.key_bits):
            raise ValueError(
                f"key outside {self.key_bits}-bit domain in batch"
            )
        kernel = self._kernel_for(cache, engine)
        if kernel is not None:
            return kernel.point_many(keys)
        cache = cache if cache is not None else FetchCache()
        alive = np.ones(n, dtype=bool)
        length = self.key_bits
        if self.ancestor_checks:
            for level in self._stored_sorted:
                if level >= length:
                    break
                sel = np.flatnonzero(alive)
                if sel.size == 0:
                    break
                ok = self._probe_many(
                    keys[sel] >> np.uint64(length - level), level, cache
                )
                alive[sel[~ok]] = False
        # The doubting stage degenerates: the key level is the deepest
        # possible, so a single stored-level probe (if any) decides.
        if length <= self._deepest and self._stored[length]:
            sel = np.flatnonzero(alive)
            if sel.size:
                ok = self._probe_many(keys[sel], length, cache)
                alive[sel[~ok]] = False
        self._absorb_cache_stats(cache)
        return alive

    def _probe_many(
        self, prefixes: np.ndarray, level: int, cache: FetchCache
    ) -> np.ndarray:
        """Vectorised :meth:`_probe` for same-level prefixes.

        All prefixes of one level share a group/depth, so the batch
        reduces to: dedupe the hash prefixes, gather the mini-trees not in
        the cache with one :meth:`fetch_bt_many`, then read every node bit
        with one vectorised shift.  Bit-identical to the scalar probe,
        including the mirror-root zeroing.
        """
        group, depth, hp_len = self._locate(level)
        cache.ensure(self.rbf.generation)
        n = prefixes.size
        cache.probes += n
        sp = current_span()
        if sp is not None:
            sp.add("filter_probes", n)
            sp.add(f"probes_l{level}", n)
        if hp_len:
            hp = prefixes >> np.uint64(depth)
        else:
            hp = np.zeros(n, dtype=np.uint64)
        uniq, inverse = np.unique(hp, return_inverse=True)
        cached_rows, found = cache.lookup(group, uniq)
        if cached_rows is None:
            bts = np.empty((uniq.size, self.codec.words), dtype=np.uint64)
        else:
            bts = cached_rows  # rows valid where found; rest filled below
        if not found.all():
            missing = np.flatnonzero(~found)
            cache.fetches += missing.size
            if sp is not None:
                sp.add("cache_hits", int(uniq.size - missing.size))
            fetched = self.rbf.fetch_bt_many(
                uniq[missing] ^ np.uint64(self._group_tags[group]),
                out=cache.scratch.out(missing.size, self.codec.words),
                scratch=cache.scratch,
            )
            if hp_len and self._stored[hp_len]:
                # Mirror root bit 0: the hash prefix was never inserted,
                # so the whole mini-tree is genuinely absent.
                dead = (fetched[:, 0] & np.uint64(1)) == 0
                fetched[dead] = 0
            bts[missing] = fetched
            # The cache keeps rows across calls while ``fetched`` is a
            # reused scratch view — store a snapshot, not the buffer.
            cache.store(group, uniq[missing], fetched.copy())
        elif sp is not None:
            sp.add("cache_hits", int(uniq.size))
        node = np.uint64(1 << depth) | (
            prefixes & np.uint64((1 << depth) - 1)
        )
        bit = node - np.uint64(1)
        word = (bit >> np.uint64(6)).astype(np.intp)
        sel = bts[inverse, word]
        return ((sel >> (bit & np.uint64(63))) & np.uint64(1)).astype(bool)

    @staticmethod
    def _split_ranges(ranges) -> tuple[np.ndarray, np.ndarray]:
        """Normalise a batch of ``(lo, hi)`` pairs to two uint64 arrays."""
        arr = np.asarray(ranges, dtype=np.uint64)
        if arr.size == 0:
            empty = np.zeros(0, dtype=np.uint64)
            return empty, empty
        if arr.ndim == 1 and arr.size == 2:
            arr = arr.reshape(1, 2)
        if arr.ndim != 2 or (arr.size and arr.shape[1] != 2):
            raise ValueError(
                f"expected an (n, 2) batch of ranges, got shape {arr.shape}"
            )
        return arr[:, 0].copy(), arr[:, 1].copy()

    def _absorb_cache_stats(self, cache: FetchCache) -> None:
        """Drain a batch cache's counters into the cumulative statistics.

        Draining (not just reading) keeps the totals exact when the same
        cache object is reused across batches — its entries stay warm,
        but each probe/fetch is folded in exactly once.
        """
        self.cache_probes += cache.probes
        self.cache_fetches += cache.fetches
        cache.probes = 0
        cache.fetches = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fetch-cache hit rate over all batch queries since the last reset."""
        if not self.cache_probes:
            return 0.0
        return (self.cache_probes - self.cache_fetches) / self.cache_probes

    def _probe(
        self,
        prefix: int,
        level: int,
        cache: dict[tuple[int, int], np.ndarray],
    ) -> bool:
        """Membership bit for a stored-level prefix (Algorithm 4)."""
        group, depth, hp_len = self._locate(level)
        if isinstance(cache, FetchCache):
            cache.ensure(self.rbf.generation)
        sp = current_span()
        if sp is not None:
            sp.add("filter_probes", 1)
            sp.add(f"probes_l{level}", 1)
        hp = prefix >> depth if hp_len else 0
        key = (group, hp)
        bt = cache.get(key)
        if bt is not None and sp is not None:
            sp.add("cache_hits", 1)
        if bt is None:
            bt = self.rbf.fetch_bt(hp ^ self._group_tags[group])
            if (
                hp_len
                and self._stored[hp_len]
                and not self.codec.get_node(bt, 1)
            ):
                # Mirror root bit is 0: this hash prefix was never inserted,
                # so every node of the mini-tree is genuinely absent.
                bt = self._zero_bt
            cache[key] = bt
        node = (1 << depth) | (prefix & ((1 << depth) - 1))
        return self.codec.get_node(bt, node)

    # ------------------------------------------------------------------
    # self-checks
    # ------------------------------------------------------------------
    def verify_invariants(
        self,
        keys: "Iterable[int] | np.ndarray | None" = None,
        *,
        sample: int = 32,
    ) -> bool:
        """Deep structural self-check; raises on violation, returns True.

        Used by ``serialize.loads`` after reconstruction and by the
        SSTable recovery path after reloading a persisted filter, as
        defence in depth behind the CRC: a blob whose bytes verify but
        whose fields are mutually inconsistent (or a live filter damaged
        by a bug) is caught here.  Checks:

        * geometry — group count, hash-tag table, codec word width and
          the frozen zero-BT all agree with ``key_bits``/``group_bits``;
        * the RBF — array length matches its declared bit count, the pad
          word is untouched, and the load factor is a probability;
        * the stored-level bitmap — ``_stored_sorted`` (and the derived
          deepest/shallowest/next-stored tables) is exactly the set bits
          of ``_stored``;
        * optionally, the one-sided guarantee on ``sample`` evenly
          spaced source keys (see the base class).

        Raises :class:`~repro.core.errors.FilterCorruptionError` with a
        specific message on the first violation.
        """
        from repro.core.errors import FilterCorruptionError

        def fail(msg: str) -> None:
            raise FilterCorruptionError(
                f"{type(self).__name__} invariant violated: {msg}"
            )

        if self.n_keys < 0:
            fail(f"negative n_keys {self.n_keys}")
        expected_groups = (
            self.key_bits + self.group_bits - 1
        ) // self.group_bits
        if self.num_groups != expected_groups:
            fail(
                f"num_groups={self.num_groups}, expected {expected_groups} "
                f"for key_bits={self.key_bits}, group_bits={self.group_bits}"
            )
        if len(self._group_tags) != self.num_groups + 2:
            fail(
                f"{len(self._group_tags)} group tags for "
                f"{self.num_groups} groups (expected num_groups + 2)"
            )
        if self.codec.bt_bits != (1 << (self.group_bits + 1)):
            fail(
                f"codec encodes {self.codec.bt_bits}-bit BTs, geometry "
                f"implies {1 << (self.group_bits + 1)}"
            )
        if self._zero_bt.shape != (self.codec.words,) or self._zero_bt.any():
            fail("zero-BT template is not an all-zero codec-width array")
        # RBF consistency.
        rbf = self.rbf
        if rbf.bits != rbf._nwords * 64:
            fail(f"RBF bits={rbf.bits} != {rbf._nwords} words * 64")
        if rbf._array.shape != (rbf._nwords + 1,):
            fail(
                f"RBF array has {rbf._array.shape[0]} words, expected "
                f"{rbf._nwords} + 1 pad"
            )
        if int(rbf._array[-1]) != 0:
            fail("RBF pad word is non-zero")
        p1 = rbf.p1
        if not 0.0 <= p1 <= 1.0:
            fail(f"load factor P1={p1} is not a probability")
        # Stored-level bitmap vs the derived structures.
        if self._stored.shape != (self.key_bits + 1,):
            fail(
                f"stored bitmap has {self._stored.shape[0]} slots, "
                f"expected key_bits + 1 = {self.key_bits + 1}"
            )
        levels = [int(l) for l in np.flatnonzero(self._stored) if l >= 1]
        if self._stored_sorted != levels:
            fail(
                f"stored-level list {self._stored_sorted} does not match "
                f"bitmap {levels}"
            )
        if not levels:
            fail("no stored levels")
        if self._deepest != levels[-1] or self._shallowest != levels[0]:
            fail(
                f"deepest/shallowest ({self._deepest}/{self._shallowest}) "
                f"disagree with stored levels {levels}"
            )
        nxt = 0
        for l in range(self.key_bits, -1, -1):
            if self._next_stored[l] != nxt:
                fail(
                    f"next-stored table wrong at level {l}: "
                    f"{self._next_stored[l]} != {nxt}"
                )
            if self._stored[l]:
                nxt = l
        return super().verify_invariants(keys, sample=sample)

    # ------------------------------------------------------------------
    # set algebra
    # ------------------------------------------------------------------
    def union(self, other: "REncoder") -> "REncoder":
        """Filter for the union of two key sets, without the keys.

        Sound whenever both filters share geometry (key width, group size,
        hash family, array size): the bit arrays are OR-ed and the stored
        level set becomes the *intersection* — a level only one side
        stored cannot be trusted for the other side's keys, so the merged
        filter stops consulting it.  Never introduces false negatives;
        may be slightly less accurate than a rebuild (the paper's LSM
        integration rebuilds on merge; union is the cheap alternative
        when the source tables' filters are compatible).
        """
        if type(other) is not type(self):
            raise TypeError(
                f"cannot union {type(self).__name__} with "
                f"{type(other).__name__}"
            )
        same = (
            self.key_bits == other.key_bits
            and self.group_bits == other.group_bits
            and self.rbf.k == other.rbf.k
            and self.rbf.seed == other.rbf.seed
            and self.rbf.bits == other.rbf.bits
            and self.rbf.layout == other.rbf.layout
            and self.rmax == other.rmax
        )
        if not same:
            raise ValueError("filters have incompatible geometry")
        merged = type(self).__new__(type(self))
        for attr in (
            "key_bits", "rmax", "levels_per_round", "target_p1",
            "max_expansion", "ancestor_checks", "codec", "group_bits",
            "num_groups", "_group_tags", "_zero_bt",
        ):
            setattr(merged, attr, getattr(self, attr))
        merged.n_keys = self.n_keys + other.n_keys
        merged.rbf = self.rbf.copy()
        merged.rbf._array |= other.rbf._array
        merged.rbf._ones_dirty = True
        merged._stored = self._stored & other._stored
        if not merged._stored.any():
            raise ValueError(
                "filters share no stored levels; rebuild instead of union "
                f"({self.stored_levels} vs {other.stored_levels})"
            )
        merged._finalise_levels()
        merged.final_p1 = merged.rbf.p1
        for attr in ("l_kk", "l_kq", "_sample_queries"):
            if hasattr(self, attr):
                setattr(merged, attr, getattr(self, attr))
        return merged

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        return self.rbf.size_in_bits()

    @property
    def probe_count(self) -> int:
        """RBF block fetches — the paper's memory-access count."""
        return self.rbf.fetch_count

    def reset_counters(self) -> None:
        self.rbf.reset_counters()
        self.cache_probes = 0
        self.cache_fetches = 0

    @property
    def stored_levels(self) -> list[int]:
        """The levels the adaptive construction chose, ascending."""
        return list(self._stored_sorted)

    # Pull-based gauges (see repro.telemetry.instrument): the adaptive
    # construction's outcome plus the cumulative probe/cache statistics.
    _TELEMETRY = (
        "size_in_bits",
        "n_keys",
        "final_p1",
        "stored_level_count",
        "deepest_level",
        "shallowest_level",
        "probe_count",
        "cache_probes",
        "cache_fetches",
        "cache_hit_rate",
    )

    @property
    def stored_level_count(self) -> int:
        """How many levels the adaptive construction stored."""
        return len(self._stored_sorted)

    @property
    def deepest_level(self) -> int:
        """Deepest (longest-prefix) stored level."""
        return self._deepest

    @property
    def shallowest_level(self) -> int:
        """Shallowest (shortest-prefix) stored level."""
        return self._shallowest

    def predicted_fpr(self, range_size: int = 32) -> float:
        """Theorem 2's bound evaluated at this filter's own parameters.

        Uses the built filter's measured ``P1``, its stored-level count
        and hash count, and ``Lq = ceil(log2(range_size))``.  An upper
        bound on the FPR for empty queries of the given size — compare
        with measured FPR in EXPERIMENTS.md / the Table II bench.
        """
        from repro.analysis.bounds import fpr_bound

        if range_size < 1:
            raise ValueError(f"range_size must be >= 1, got {range_size}")
        l_query = max(1, (range_size - 1).bit_length())
        l_stored = max(l_query, len(self._stored_sorted))
        p1 = min(0.999, max(1e-6, self.final_p1))
        return fpr_bound(p1, l_stored, l_query, self.rbf.k)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        levels = self._stored_sorted
        span = f"[{levels[0]}..{levels[-1]}]" if levels else "[]"
        return (
            f"{type(self).__name__}(n={self.n_keys}, bits={self.size_in_bits()}, "
            f"levels={span} ({len(levels)}), p1={self.final_p1:.3f})"
        )
