r"""Serialization for the REncoder family and the RBF.

An LSM-tree persists its per-SSTable filters next to the table so they
can be loaded into memory on restart without a rebuild.  This module
provides a compact, versioned binary format:

* header: magic, version, class name, key geometry (key_bits, group_bits,
  k, seed, rmax), the stored-level bitmap, and key count;
* payload: the raw RBF words;
* trailer (v2): a CRC32 over header **and** payload, so any torn write
  or bit flip anywhere in the blob is detected at load time.

v2 layout (all integers little-endian)::

    +------+---------+----------+------------+-------------+---------+--------+
    | RENC | version | meta_len |   meta     | payload_len | payload |  crc32 |
    | 4 B  |  u16=2  |   u32    | JSON bytes |     u32     |  words  |  u32   |
    +------+---------+----------+------------+-------------+---------+--------+
    \________________________ crc32 covers this span ________________/

``dumps``/``loads`` round-trip every variant (base, SS, SE, PO and the
Two-Stage float filter) bit-exactly: a loaded filter answers every query
identically to the original, which the tests verify.

Filters built on the cache-blocked RBF layout
(:class:`~repro.core.kernels.layout.BlockedRBF`) are written as a v3
record: same framing and CRC trailer as v2, plus a ``layout`` metadata
field that drives placement reconstruction.  The version bump is the
record type — readers predating the blocked layout reject v3 blobs
instead of rebuilding a filter whose bit positions they would
misinterpret.  Flat filters keep writing byte-identical v2 blobs.

``loads`` is strict: every field is bounds-checked *before* it is used,
so hostile or damaged input raises a typed error from
:mod:`repro.core.errors` — :class:`TruncatedError` when the buffer ends
early, :class:`FilterCorruptionError` for everything else (bad magic,
checksum mismatch, unknown class, metadata outside the ranges the
constructors accept) — never an ``IndexError``/``KeyError``, a huge
allocation, or a silently wrong filter.  v1 blobs (no trailer) are still
readable with the same validation minus the checksum.
"""

from __future__ import annotations

import json
import struct
import time
import zlib

import numpy as np

from repro.core.errors import (
    FilterCorruptionError,
    TruncatedError,
)
from repro.core.rbf import RangeBloomFilter
from repro.core.rencoder import REncoder
from repro.core.two_stage import TwoStageREncoder
from repro.core.variants import REncoderPO, REncoderSE, REncoderSS
from repro.telemetry.registry import global_registry
from repro.telemetry.tracing import current_span

__all__ = ["dumps", "loads", "checksum", "MAGIC", "VERSION"]

MAGIC = b"RENC"
VERSION = 2
#: Record type for filters on the blocked RBF layout (v2 framing + CRC).
VERSION_BLOCKED = 3
_LAYOUTS = ("flat", "blocked")

#: group_bits bound mirrors RangeBloomFilter's constructor check.
_MAX_GROUP_BITS = 9
_MAX_K = 64
_U64 = 1 << 64

_CLASSES = {
    cls.__name__: cls
    for cls in (REncoder, REncoderSS, REncoderSE, REncoderPO,
                TwoStageREncoder)
}


def checksum(data: bytes) -> int:
    """The CRC32 used by the v2 format (and the SSTable manifest)."""
    return zlib.crc32(data) & 0xFFFF_FFFF


def _observe_codec_ns(op: str, start_ns: int, nbytes: int) -> None:
    """Record one encode/decode timing on the global registry + trace."""
    elapsed = time.perf_counter_ns() - start_ns  # lint: allow[wall-clock-in-simulated-path]
    global_registry().histogram(
        f"serialize_{op}_ns",
        help=f"wall time of serialize.{op} per call",
        labels={"component": "serialize"},
    ).observe(elapsed)
    sp = current_span()
    if sp is not None:
        sp.add(f"serialize_{op}_ns", elapsed)
        sp.add(f"serialize_{op}_bytes", nbytes)


def dumps(filt: REncoder) -> bytes:
    """Serialize a built REncoder-family filter to bytes (v2, checksummed)."""
    start_ns = time.perf_counter_ns()  # lint: allow[wall-clock-in-simulated-path] — codec telemetry
    if type(filt).__name__ not in _CLASSES:
        raise TypeError(
            f"cannot serialize {type(filt).__name__}; expected one of "
            f"{sorted(_CLASSES)}"
        )
    version = VERSION
    meta = {
        "class": type(filt).__name__,
        "key_bits": filt.key_bits,
        "group_bits": filt.group_bits,
        "k": filt.rbf.k,
        "seed": filt.rbf.seed,
        "rmax": filt.rmax,
        "n_keys": filt.n_keys,
        "target_p1": filt.target_p1,
        "levels_per_round": filt.levels_per_round,
        "max_expansion": filt.max_expansion,
        "ancestor_checks": filt.ancestor_checks,
        "stored_levels": filt.stored_levels,
        "bits": filt.rbf.bits,
    }
    for attr in ("l_kk", "l_kq", "t_exp", "exp_bits", "offset", "precision"):
        if hasattr(filt, attr):
            meta[attr] = getattr(filt, attr)
    if filt.rbf.layout != "flat":
        meta["layout"] = filt.rbf.layout
        version = VERSION_BLOCKED
    meta_blob = json.dumps(meta, sort_keys=True).encode()
    payload = filt.rbf._array.astype("<u8").tobytes()
    body = b"".join(
        [
            MAGIC,
            struct.pack("<HI", version, len(meta_blob)),
            meta_blob,
            struct.pack("<I", len(payload)),
            payload,
        ]
    )
    blob = body + struct.pack("<I", checksum(body))
    _observe_codec_ns("dumps", start_ns, len(blob))
    return blob


# ----------------------------------------------------------------------
# strict decoding helpers
# ----------------------------------------------------------------------
def _need(data: bytes, offset: int, count: int, what: str) -> None:
    """Bounds check: the next ``count`` bytes must exist."""
    if offset + count > len(data):
        raise TruncatedError(
            f"truncated blob: need {count} byte(s) for {what} at offset "
            f"{offset}, have {len(data) - offset}"
        )


def _meta_int(meta: dict, key: str, lo: int, hi: int) -> int:
    """A required integer metadata field within ``[lo, hi]``."""
    value = meta.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise FilterCorruptionError(
            f"metadata field {key!r} must be an integer, got {value!r}"
        )
    if not lo <= value <= hi:
        raise FilterCorruptionError(
            f"metadata field {key!r}={value} outside [{lo}, {hi}]"
        )
    return value


def _meta_number(meta: dict, key: str) -> float:
    value = meta.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FilterCorruptionError(
            f"metadata field {key!r} must be a number, got {value!r}"
        )
    return float(value)


def _validate_meta(meta: dict) -> type:
    """Range-check every metadata field; return the filter class.

    Runs *before* any allocation, so hostile metadata (``group_bits=0``
    divide-by-zero, ``bits=2**60`` huge allocation, negative counts)
    is rejected while the only memory held is the raw input buffer.
    """
    if not isinstance(meta, dict):
        raise FilterCorruptionError(
            f"metadata must be a JSON object, got {type(meta).__name__}"
        )
    name = meta.get("class")
    cls = _CLASSES.get(name)
    if cls is None:
        raise FilterCorruptionError(
            f"unknown filter class {name!r}; expected one of "
            f"{sorted(_CLASSES)}"
        )
    key_bits = _meta_int(meta, "key_bits", 1, 64)
    _meta_int(meta, "group_bits", 1, _MAX_GROUP_BITS)
    _meta_int(meta, "k", 1, _MAX_K)
    _meta_int(meta, "seed", 0, _U64 - 1)
    _meta_int(meta, "rmax", 1, _U64 - 1)
    _meta_int(meta, "n_keys", 0, _U64 - 1)
    _meta_int(meta, "levels_per_round", 1, 64)
    _meta_int(meta, "max_expansion", 0, _U64 - 1)
    _meta_int(meta, "bits", 64, 1 << 50)
    target_p1 = _meta_number(meta, "target_p1")
    if not 0.0 < target_p1 <= 1.0:
        raise FilterCorruptionError(
            f"metadata field 'target_p1'={target_p1} outside (0, 1]"
        )
    levels = meta.get("stored_levels")
    if (
        not isinstance(levels, list)
        or not levels
        or not all(
            isinstance(l, int) and not isinstance(l, bool)
            and 1 <= l <= key_bits
            for l in levels
        )
    ):
        raise FilterCorruptionError(
            "metadata field 'stored_levels' must be a non-empty list of "
            f"levels in [1, {key_bits}], got {levels!r}"
        )
    for key in ("l_kk", "l_kq", "exp_bits"):
        if key in meta:
            _meta_int(meta, key, 0, 64)
    for key in ("t_exp", "offset"):
        if key in meta:
            _meta_number(meta, key)
    if "precision" in meta and meta["precision"] not in ("single", "double"):
        raise FilterCorruptionError(
            f"metadata field 'precision' must be 'single' or 'double', "
            f"got {meta['precision']!r}"
        )
    if meta.get("layout", "flat") not in _LAYOUTS:
        raise FilterCorruptionError(
            f"metadata field 'layout' must be one of {_LAYOUTS}, "
            f"got {meta['layout']!r}"
        )
    return cls


def _expected_payload_bytes(bits: int, group_bits: int) -> int:
    """Serialized RBF array size implied by the metadata geometry.

    Mirrors :class:`RangeBloomFilter.__init__`: ``nwords`` data words
    plus the single pad word, 8 bytes each.
    """
    words_per_block = max(1, (1 << (group_bits + 1)) // 64)
    nwords = max(words_per_block, bits // 64)
    return (nwords + 1) * 8


def loads(data: bytes) -> REncoder:
    """Reconstruct a filter serialized by :func:`dumps`.

    Raises :class:`TruncatedError` if ``data`` ends before the declared
    fields do, :class:`FilterCorruptionError` on bad magic, checksum
    mismatch, hostile metadata, or geometry/payload inconsistencies.
    """
    start_ns = time.perf_counter_ns()  # lint: allow[wall-clock-in-simulated-path] — codec telemetry
    data = bytes(data)
    _need(data, 0, 10, "header")
    if data[:4] != MAGIC:
        raise FilterCorruptionError(
            "not a serialized REncoder (bad magic "
            f"{data[:4]!r}, expected {MAGIC!r})"
        )
    version, meta_len = struct.unpack_from("<HI", data, 4)
    if version not in (1, VERSION, VERSION_BLOCKED):
        raise FilterCorruptionError(
            f"unsupported version {version} "
            f"(supported: 1, {VERSION}, {VERSION_BLOCKED})"
        )
    offset = 10
    _need(data, offset, meta_len, "metadata")
    try:
        meta = json.loads(data[offset : offset + meta_len].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FilterCorruptionError(f"undecodable metadata: {exc}") from exc
    offset += meta_len
    _need(data, offset, 4, "payload length")
    (payload_len,) = struct.unpack_from("<I", data, offset)
    offset += 4
    _need(data, offset, payload_len, "payload")
    payload_end = offset + payload_len
    trailer = len(data) - payload_end
    if version >= 2:
        if trailer < 4:
            raise TruncatedError(
                "truncated blob: need 4 byte(s) for checksum at offset "
                f"{payload_end}, have {trailer}"
            )
        if trailer > 4:
            raise FilterCorruptionError(
                f"{trailer - 4} trailing byte(s) after checksum"
            )
        (stored_crc,) = struct.unpack_from("<I", data, payload_end)
        actual_crc = checksum(data[:payload_end])
        if stored_crc != actual_crc:
            raise FilterCorruptionError(
                f"checksum mismatch: stored {stored_crc:#010x}, "
                f"computed {actual_crc:#010x}"
            )
    elif trailer:
        raise FilterCorruptionError(
            f"{trailer} trailing byte(s) after v1 payload"
        )

    cls = _validate_meta(meta)
    layout = meta.get("layout", "flat")
    # Version <-> record-type coupling: a blocked layout claim in a v2
    # blob (or a v3 blob without one) means the record was tampered with
    # or mis-written — the bit positions would be misinterpreted.
    if (layout != "flat") != (version == VERSION_BLOCKED):
        raise FilterCorruptionError(
            f"layout {layout!r} inconsistent with record version {version}"
        )
    expected = _expected_payload_bytes(meta["bits"], meta["group_bits"])
    if payload_len != expected:
        raise FilterCorruptionError(
            f"payload length {payload_len} does not match filter geometry "
            f"(bits={meta['bits']}, group_bits={meta['group_bits']} "
            f"implies {expected} bytes)"
        )
    words = np.frombuffer(data[offset:payload_end], dtype="<u8").astype(
        np.uint64
    )

    # Rebuild the object field-by-field; construction must not re-run
    # (the keys are gone — only the RBF payload survives).
    filt = cls.__new__(cls)
    filt.key_bits = meta["key_bits"]
    filt.n_keys = meta["n_keys"]
    filt.rmax = meta["rmax"]
    filt.target_p1 = meta["target_p1"]
    filt.levels_per_round = meta["levels_per_round"]
    filt.max_expansion = meta["max_expansion"]
    filt.ancestor_checks = meta.get("ancestor_checks", True)
    from repro.core.bitmap_tree import BitmapTreeCodec
    from repro.hashing.mix64 import seeds_for

    filt.codec = BitmapTreeCodec(meta["group_bits"])
    filt.group_bits = meta["group_bits"]
    filt.num_groups = (
        meta["key_bits"] + meta["group_bits"] - 1
    ) // meta["group_bits"]
    filt._group_tags = seeds_for(
        filt.num_groups + 2, meta["seed"] ^ 0x7461_6773
    )
    filt._zero_bt = np.zeros(filt.codec.words, dtype=np.uint64)
    filt._zero_bt.setflags(write=False)
    filt.rbf = RangeBloomFilter(
        meta["bits"], meta["k"], meta["group_bits"], meta["seed"],
        layout=layout,
    )
    if len(words) != len(filt.rbf._array):
        raise FilterCorruptionError(
            "payload length does not match filter geometry"
        )
    filt.rbf._array[:] = words
    filt._stored = np.zeros(meta["key_bits"] + 1, dtype=bool)
    for level in meta["stored_levels"]:
        filt._stored[level] = True
    filt._finalise_levels()
    filt.final_p1 = filt.rbf.p1
    for attr in ("l_kk", "l_kq", "t_exp", "exp_bits", "offset", "precision"):
        if attr in meta:
            setattr(filt, attr, meta[attr])
    if cls is REncoderSE:
        filt._sample_queries = []
    if cls is TwoStageREncoder:
        from repro.core.two_stage import double_to_key, float_to_key

        filt._encode = (
            float_to_key if meta.get("precision", "single") == "single"
            else double_to_key
        )
    filt.verify_invariants()
    _observe_codec_ns("loads", start_ns, len(data))
    return filt
