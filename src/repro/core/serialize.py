"""Serialization for the REncoder family and the RBF.

An LSM-tree persists its per-SSTable filters next to the table so they
can be loaded into memory on restart without a rebuild.  This module
provides a compact, versioned binary format:

* header: magic, version, class name, key geometry (key_bits, group_bits,
  k, seed, rmax), the stored-level bitmap, and key count;
* payload: the raw RBF words.

``dumps``/``loads`` round-trip every variant (base, SS, SE, PO and the
Two-Stage float filter) bit-exactly: a loaded filter answers every query
identically to the original, which the tests verify.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.core.rbf import RangeBloomFilter
from repro.core.rencoder import REncoder
from repro.core.two_stage import TwoStageREncoder
from repro.core.variants import REncoderPO, REncoderSE, REncoderSS

__all__ = ["dumps", "loads", "MAGIC"]

MAGIC = b"RENC"
VERSION = 1

_CLASSES = {
    cls.__name__: cls
    for cls in (REncoder, REncoderSS, REncoderSE, REncoderPO,
                TwoStageREncoder)
}


def dumps(filt: REncoder) -> bytes:
    """Serialize a built REncoder-family filter to bytes."""
    if type(filt).__name__ not in _CLASSES:
        raise TypeError(
            f"cannot serialize {type(filt).__name__}; expected one of "
            f"{sorted(_CLASSES)}"
        )
    meta = {
        "class": type(filt).__name__,
        "key_bits": filt.key_bits,
        "group_bits": filt.group_bits,
        "k": filt.rbf.k,
        "seed": filt.rbf.seed,
        "rmax": filt.rmax,
        "n_keys": filt.n_keys,
        "target_p1": filt.target_p1,
        "levels_per_round": filt.levels_per_round,
        "max_expansion": filt.max_expansion,
        "ancestor_checks": filt.ancestor_checks,
        "stored_levels": filt.stored_levels,
        "bits": filt.rbf.bits,
    }
    for attr in ("l_kk", "l_kq", "t_exp", "exp_bits", "offset", "precision"):
        if hasattr(filt, attr):
            meta[attr] = getattr(filt, attr)
    meta_blob = json.dumps(meta, sort_keys=True).encode()
    payload = filt.rbf._array.astype("<u8").tobytes()
    return b"".join(
        [
            MAGIC,
            struct.pack("<HI", VERSION, len(meta_blob)),
            meta_blob,
            struct.pack("<I", len(payload)),
            payload,
        ]
    )


def loads(data: bytes) -> REncoder:
    """Reconstruct a filter serialized by :func:`dumps`."""
    if data[:4] != MAGIC:
        raise ValueError("not a serialized REncoder (bad magic)")
    version, meta_len = struct.unpack_from("<HI", data, 4)
    if version != VERSION:
        raise ValueError(f"unsupported version {version}")
    offset = 10
    meta = json.loads(data[offset : offset + meta_len].decode())
    offset += meta_len
    (payload_len,) = struct.unpack_from("<I", data, offset)
    offset += 4
    words = np.frombuffer(
        data[offset : offset + payload_len], dtype="<u8"
    ).astype(np.uint64)

    cls = _CLASSES[meta["class"]]
    # Rebuild the object field-by-field; construction must not re-run
    # (the keys are gone — only the RBF payload survives).
    filt = cls.__new__(cls)
    filt.key_bits = meta["key_bits"]
    filt.n_keys = meta["n_keys"]
    filt.rmax = meta["rmax"]
    filt.target_p1 = meta["target_p1"]
    filt.levels_per_round = meta["levels_per_round"]
    filt.max_expansion = meta["max_expansion"]
    filt.ancestor_checks = meta.get("ancestor_checks", True)
    from repro.core.bitmap_tree import BitmapTreeCodec
    from repro.hashing.mix64 import seeds_for

    filt.codec = BitmapTreeCodec(meta["group_bits"])
    filt.group_bits = meta["group_bits"]
    filt.num_groups = (
        meta["key_bits"] + meta["group_bits"] - 1
    ) // meta["group_bits"]
    filt._group_tags = seeds_for(
        filt.num_groups + 2, meta["seed"] ^ 0x7461_6773
    )
    filt._zero_bt = np.zeros(filt.codec.words, dtype=np.uint64)
    filt.rbf = RangeBloomFilter(
        meta["bits"], meta["k"], meta["group_bits"], meta["seed"]
    )
    if len(words) != len(filt.rbf._array):
        raise ValueError("payload length does not match filter geometry")
    filt.rbf._array[:] = words
    filt._stored = np.zeros(meta["key_bits"] + 1, dtype=bool)
    for level in meta["stored_levels"]:
        filt._stored[level] = True
    filt._finalise_levels()
    filt.final_p1 = filt.rbf.p1
    for attr in ("l_kk", "l_kq", "t_exp", "exp_bits", "offset", "precision"):
        if attr in meta:
            setattr(filt, attr, meta[attr])
    if cls is REncoderSE:
        filt._sample_queries = []
    if cls is TwoStageREncoder:
        from repro.core.two_stage import double_to_key, float_to_key

        filt._encode = (
            float_to_key if meta.get("precision", "single") == "single"
            else double_to_key
        )
    return filt
