"""Cache-blocked RBF placement — all ``k`` windows in one memory block.

The flat :class:`~repro.core.rbf.RangeBloomFilter` places each of a hash
prefix's ``k`` Bitmap-Tree windows independently anywhere in the array,
so one probe touches ``k`` scattered cache lines.  :class:`BlockedRBF`
instead hashes the prefix *once* to a cache-line-aligned block and
derives the ``k`` window offsets inside that block, so every probe —
insert, fetch, or fused bit-test — lands in one contiguous,
line-aligned region: a single gather instead of ``k`` scattered reads.
This is the classic blocked-Bloom-filter trade (Putze et al.): slightly
higher FPR (bits of one prefix are confined to a block, so block load
factors vary around the global ``P1``) for strictly better memory
locality.  Memento and Proteus (PAPERS.md) make the same trade on their
hot paths.

Geometry
--------
``span_bits`` is the block size: at least one 512-bit cache line and at
least twice the Bitmap-Tree size, so windows still start at *arbitrary
bit offsets* inside the block — the bit-granular placement that the RBF
accuracy analysis requires (see :mod:`repro.core.rbf`) is preserved
within each block.  The array is tiled with ``nblocks`` such blocks;
offsets are drawn from ``[0, span_bits - block_bits]``.

Selection is via ``RangeBloomFilter(..., layout="blocked")`` — the base
constructor dispatches here, so every call site (REncoder, the storage
tier, ``serialize.loads``) picks the layout with one keyword.
"""

from __future__ import annotations

import numpy as np

from repro.core.rbf import RangeBloomFilter
from repro.hashing.mix64 import HashFamily

__all__ = ["BlockedRBF", "LINE_BITS"]

#: One x86 cache line.  Blocks are multiples of this, line-aligned.
LINE_BITS = 512

#: Seed tweak separating the block-picking hash from the offset family.
_BLOCK_SEED_TAG = 0x626C_6F63_6B65_6421  # "blocked!"


class BlockedRBF(RangeBloomFilter):
    """RBF with all ``k`` windows of a hash prefix in one block.

    Constructed via ``RangeBloomFilter(..., layout="blocked")``.  The
    public API, counters and serialization contract are identical to the
    flat layout; only the placement (and therefore the bit pattern)
    differs.  A blocked filter is *not* bit-compatible with a flat one —
    the layout is recorded in the serialized metadata so a reload
    reconstructs the same placement.
    """

    layout = "blocked"

    def _init_placement(self) -> None:
        bt = self.block_bits
        span = max(2 * bt, LINE_BITS)
        if span > self.bits:
            # Tiny filters: shrink the block to the whole array rather
            # than rejecting the geometry (keeps every flat-legal
            # configuration constructible in blocked form too).
            span = self.bits
        self.span_bits = span
        self.nblocks = self.bits // span
        self.num_offsets = span - bt + 1
        #: Flat-equivalent attribute kept for introspection/benches.
        self.num_positions = self.nblocks * self.num_offsets
        self._block_family = HashFamily(
            1, self.nblocks, self.seed ^ _BLOCK_SEED_TAG
        )
        self._family = HashFamily(self.k, self.num_offsets, self.seed)

    def _positions(self, hash_key: int) -> list[int]:
        base = self._block_family.position(hash_key, 0) * self.span_bits
        return [base + off for off in self._family.positions(hash_key)]

    def _positions_array(self, hash_keys: np.ndarray) -> np.ndarray:
        blocks = self._block_family.positions_array(hash_keys)[0]
        base = blocks * np.uint64(self.span_bits)
        return self._family.positions_array(hash_keys) + base[None, :]

    def placement_params(self) -> dict:
        """Layout constants the fused kernels fold into their tables."""
        return {
            "layout": self.layout,
            "span_bits": self.span_bits,
            "nblocks": self.nblocks,
            "num_offsets": self.num_offsets,
            "block_seed": int(self._block_family._seeds[0]),
            "seeds": np.asarray(self._family._seeds_arr, dtype=np.uint64),
        }
