"""Compiled batch kernel — a numba per-query loop over the RBF words.

Where the numpy backend vectorises across a whole level of the batch,
this backend compiles the *entire* query — greedy dyadic decomposition,
ancestor checks, doubting DFS, splitmix64 mixing and bit tests — into
one nopython loop per query, with early exit the vectorised path cannot
have (a range query stops at its first matching piece; a probe stops at
its first missing window bit).

The module is import-safe without numba: the jit decorator degrades to
identity and :class:`NumbaKernel` falls back to the inherited numpy
implementation.  Backend selection (:func:`repro.core.kernels.resolve_backend`)
never picks ``numba`` when the package is missing, so the un-jitted
Python bodies below are never on a hot path.

Equivalence: same probe identity and traversal semantics as the numpy
kernel (see :mod:`repro.core.kernels.fused`); DFS order differs from the
level-synchronous descent but the doubting traversal's answer is
order-independent — a True leaf is True in any order, and budget
exhaustion depends only on the total expansion cost, which is
order-invariant when no leaf matches.  Asserted bit-identical by
``tests/test_kernels.py`` whenever numba is installed.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.fused import LAYOUT_BLOCKED, NumpyKernel
from repro.telemetry.profiler import profile_phase

__all__ = ["NumbaKernel", "NUMBA_IMPORTED"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_IMPORTED = True
except ImportError:
    NUMBA_IMPORTED = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Identity decorator so the module parses without numba."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


#: DFS budgets above this would need a pre-sized stack too large to
#: allocate per batch; such filters use the numpy kernel instead.
_MAX_COMPILED_EXPANSION = 1 << 22

_U0 = np.uint64(0)
_U1 = np.uint64(1)
_U2 = np.uint64(2)
_U4 = np.uint64(4)
_U6 = np.uint64(6)
_U8 = np.uint64(8)
_U16 = np.uint64(16)
_U32 = np.uint64(32)
_U63 = np.uint64(63)
_C1 = np.uint64(0xBF58476D1CE4E5B9)
_C2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)


@njit(cache=True, inline="always")
def _mix64(x):
    """splitmix64 finalizer — scalar uint64, matches hashing.mix64."""
    x ^= x >> _S30
    x = x * _C1
    x ^= x >> _S27
    x = x * _C2
    x ^= x >> _S31
    return x


@njit(cache=True, inline="always")
def _probe_one(
    arr, prefix, level,
    depth_tbl, tag_tbl, mirror_tbl, seeds,
    layout_code, buckets, span_bits, nblocks, num_offsets, block_seed,
):
    """Fused single-probe bit test; early-exits on the first miss."""
    depth = np.uint64(depth_tbl[level])
    maskd = (_U1 << depth) - _U1
    hp = (prefix >> depth) ^ tag_tbl[level]
    nodebit = maskd + (prefix & maskd)
    base = _U0
    if layout_code == LAYOUT_BLOCKED:
        base = (_mix64(hp ^ block_seed) % nblocks) * span_bits
    mirror = mirror_tbl[level]
    for i in range(seeds.size):
        pos = _mix64(hp ^ seeds[i]) % buckets + base
        bitpos = pos + nodebit
        if ((arr[np.int64(bitpos >> _U6)] >> (bitpos & _U63)) & _U1) == _U0:
            return False
        if mirror:
            if ((arr[np.int64(pos >> _U6)] >> (pos & _U63)) & _U1) == _U0:
                return False
    return True


@njit(cache=True)
def _verify_one(
    arr, prefix, length, n_keys_pos,
    ancestor_checks, stored_levels, stored, next_stored, deepest,
    max_expansion,
    depth_tbl, tag_tbl, mirror_tbl, seeds,
    layout_code, buckets, span_bits, nblocks, num_offsets, block_seed,
    stack_pfx, stack_lvl, counters,
):
    """Scalar verification of one dyadic piece — Algorithm 3's core."""
    if length == 0:
        return n_keys_pos
    if ancestor_checks:
        for li in range(stored_levels.size):
            lvl = stored_levels[li]
            if lvl >= length:
                break
            counters[0] += 1
            if not _probe_one(
                arr, prefix >> np.uint64(length - lvl), lvl,
                depth_tbl, tag_tbl, mirror_tbl, seeds,
                layout_code, buckets, span_bits, nblocks, num_offsets,
                block_seed,
            ):
                return False
    if length > deepest:
        return True
    stack_pfx[0] = prefix
    stack_lvl[0] = length
    top = 1
    budget = max_expansion
    while top > 0:
        top -= 1
        p = stack_pfx[top]
        lvl = stack_lvl[top]
        if stored[lvl]:
            counters[0] += 1
            if not _probe_one(
                arr, p, lvl,
                depth_tbl, tag_tbl, mirror_tbl, seeds,
                layout_code, buckets, span_bits, nblocks, num_offsets,
                block_seed,
            ):
                continue
        if lvl >= deepest:
            return True
        nxt = next_stored[lvl]
        gap = nxt - lvl
        if gap >= 62:
            return True  # expansion cost exceeds any budget
        budget -= np.int64(1) << np.int64(gap)
        if budget < 0:
            return True  # doubting budget exhausted: conservative yes
        nchild = np.int64(1) << np.int64(gap)
        base_child = p << np.uint64(gap)
        for e in range(nchild - 1, -1, -1):
            stack_pfx[top] = base_child | np.uint64(e)
            stack_lvl[top] = nxt
            top += 1
    return False


@njit(cache=True)
def _range_kernel(
    los, his, out, arr, key_bits, n_keys_pos,
    ancestor_checks, stored_levels, stored, next_stored, deepest,
    max_expansion,
    depth_tbl, tag_tbl, mirror_tbl, seeds,
    layout_code, buckets, span_bits, nblocks, num_offsets, block_seed,
    counters,
):
    stack_pfx = np.empty(max_expansion + 2, dtype=np.uint64)
    stack_lvl = np.empty(max_expansion + 2, dtype=np.int64)
    kb = np.uint64(key_bits)
    top_key = (~_U0) >> np.uint64(64 - key_bits)
    full64 = key_bits == 64
    for q in range(los.size):
        lo = los[q]
        hi = his[q]
        res = False
        if full64 and lo == _U0 and hi == top_key:
            # hi - lo + 1 would wrap; scalar walk emits the empty prefix.
            res = n_keys_pos
        else:
            cur = lo
            remaining = hi - lo + _U1
            while remaining > _U0:
                if cur == _U0:
                    align = _U1 << _U63 if full64 else _U1 << kb
                else:
                    align = cur & (~cur + _U1)
                m = remaining
                m |= m >> _U1
                m |= m >> _U2
                m |= m >> _U4
                m |= m >> _U8
                m |= m >> _U16
                m |= m >> _U32
                msb = m - (m >> _U1)
                size = align if align < msb else msb
                log = np.int64(0)
                s = size
                while s > _U1:
                    s >>= _U1
                    log += 1
                length = key_bits - log
                prefix = cur >> np.uint64(log) if length > 0 else _U0
                if _verify_one(
                    arr, prefix, length, n_keys_pos,
                    ancestor_checks, stored_levels, stored, next_stored,
                    deepest, max_expansion,
                    depth_tbl, tag_tbl, mirror_tbl, seeds,
                    layout_code, buckets, span_bits, nblocks, num_offsets,
                    block_seed, stack_pfx, stack_lvl, counters,
                ):
                    res = True
                    break
                cur = cur + size
                remaining = remaining - size
        out[q] = res


@njit(cache=True)
def _point_kernel(
    keys, out, arr, key_bits, point_levels,
    depth_tbl, tag_tbl, mirror_tbl, seeds,
    layout_code, buckets, span_bits, nblocks, num_offsets, block_seed,
    counters,
):
    for q in range(keys.size):
        key = keys[q]
        ok = True
        for li in range(point_levels.size):
            lvl = point_levels[li]
            counters[0] += 1
            if not _probe_one(
                arr, key >> np.uint64(key_bits - lvl), lvl,
                depth_tbl, tag_tbl, mirror_tbl, seeds,
                layout_code, buckets, span_bits, nblocks, num_offsets,
                block_seed,
            ):
                ok = False
                break
        out[q] = ok


class NumbaKernel(NumpyKernel):
    """Compiled per-query kernel; inherits numpy fallback + accounting."""

    backend = "numba"

    def __init__(self, filt) -> None:
        super().__init__(filt)
        t = self.tables
        self._compiled = (
            NUMBA_IMPORTED and t.max_expansion <= _MAX_COMPILED_EXPANSION
        )
        self._probe_args = (
            t.depth, t.tag, t.mirror, t.seeds,
            np.int64(t.layout_code), t.buckets, t.span_bits,
            t.nblocks, t.num_offsets, t.block_seed,
        )

    def range_many(self, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        if not self._compiled:
            return super().range_many(los, his)
        t = self.tables
        out = np.zeros(los.size, dtype=np.bool_)
        if los.size == 0:
            return out
        counters = np.zeros(1, dtype=np.int64)
        with profile_phase("kernel.compiled"):
            _range_kernel(
                np.ascontiguousarray(los, dtype=np.uint64),
                np.ascontiguousarray(his, dtype=np.uint64),
                out, self.filt.rbf._array,
                np.int64(t.key_bits), self.filt.n_keys > 0,
                t.ancestor_checks, t.stored_levels, t.stored, t.next_stored,
                np.int64(t.deepest), np.int64(t.max_expansion),
                *self._probe_args, counters,
            )
        self._account(int(counters[0]))
        return out

    def point_many(self, keys: np.ndarray) -> np.ndarray:
        if not self._compiled:
            return super().point_many(keys)
        t = self.tables
        out = np.zeros(keys.size, dtype=np.bool_)
        if keys.size == 0:
            return out
        counters = np.zeros(1, dtype=np.int64)
        _point_kernel(
            np.ascontiguousarray(keys, dtype=np.uint64),
            out, self.filt.rbf._array,
            np.int64(t.key_bits), t.point_levels,
            *self._probe_args, counters,
        )
        self._account(int(counters[0]))
        return out
