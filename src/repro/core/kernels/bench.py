"""Bench harness hooks for the batch kernels — the one place inside
``core/`` allowed to read the wall clock.

The kernels themselves stay clock-free (their phase breakdown comes
from :mod:`repro.telemetry.profiler`, which owns its own timing); this
module is the measurement harness ``benchmarks/bench_batch_query.py``
uses to time backend × layout cells.  The project lint's wall-clock
rule allowlists exactly this file (see ``repro.lint.rules``), so timing
code cannot leak into the query path unnoticed.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["time_engine", "ENGINE_LABELS"]

#: Engine names in bench-matrix order, with display labels.
ENGINE_LABELS = {
    "legacy": "legacy (FetchCache)",
    "numpy": "numpy (fused)",
    "numba": "numba (compiled)",
}


def time_engine(
    filt,
    los: np.ndarray,
    his: np.ndarray,
    *,
    engine: str,
    warmup: int = 256,
) -> dict:
    """Time one engine over one query batch; returns a bench-JSON cell.

    Warms the engine on a small prefix first (arena growth for the
    numpy kernel, jit compilation for numba) so the measured pass sees
    steady-state cost, then runs the full batch once — the regression
    gate compares across commits, so single-pass variance is handled by
    its tolerance band, not by repeats here.
    """
    n = int(los.size)
    pairs = np.stack([los, his], axis=1)
    if warmup:
        filt.query_range_many(pairs[: min(warmup, n)], engine=engine)
    filt.reset_counters()
    start = time.perf_counter()
    answers = filt.query_range_many(pairs, engine=engine)
    seconds = time.perf_counter() - start
    return {
        "engine": engine,
        "n_queries": n,
        "seconds": round(seconds, 4),
        "kqps": round(n / seconds / 1e3, 1),
        "probes_per_query": round(filt.probe_count / max(1, n), 2),
        "answers": answers,
    }
