"""Native-speed batch query kernels (DESIGN.md §11).

The interpreted batch engine (:meth:`REncoder.query_range_many`) pays
for generality: a :class:`FetchCache` dedupes mini-trees with
``np.unique``/``argsort`` per level and every probe materialises a full
combined Bitmap Tree (a ``k × (words+1)``-word gather) to read a single
bit out of it.  The kernels in this package fuse the whole descent —
dyadic decomposition, hash mixing, and RBF bit-tests — into one pass
over preallocated uint64 arrays: a probe is ``k`` single-word gathers
(plus the mirror-root word when the hash-prefix level is stored) and the
per-level Python round-trips between ``decompose.py``, ``rbf.py`` and
the variant descent loops disappear.

Backends
--------
``numpy``
    The fused vectorised kernel (:mod:`repro.core.kernels.fused`).
    Always available.
``numba``
    A compiled per-query loop (:mod:`repro.core.kernels.numba_backend`),
    used when the ``numba`` package is importable.  Falls back to
    ``numpy`` gracefully when it is not — selection never raises.
``legacy``
    The PR-1 vectorised engine with its FetchCache; kept for cache-reuse
    call sites (an explicit ``cache=`` always routes here) and as the
    reference implementation in equivalence tests.

Selection: the ``REPRO_KERNELS`` environment variable (``numba`` |
``numpy`` | ``auto`` | ``legacy``; default ``auto`` = numba when
importable, else numpy), overridable per call via the ``engine=``
argument on the batch query methods, and process-wide via
:func:`configure`.  All backends are asserted bit-identical to the
scalar descent by the property suite in ``tests/test_kernels.py``.
"""

from __future__ import annotations

import os

__all__ = [
    "available_backends",
    "configure",
    "default_backend",
    "get_kernel",
    "numba_available",
    "resolve_backend",
]

_ENV = "REPRO_KERNELS"
_VALID = ("auto", "numba", "numpy", "legacy")
#: Process-wide override installed by :func:`configure` (None = use env).
_CONFIGURED: "str | None" = None
#: Cached numba importability (None = not yet checked).
_NUMBA_OK: "bool | None" = None


def numba_available() -> bool:
    """Whether the compiled backend can be used in this process."""
    global _NUMBA_OK
    if _NUMBA_OK is None:
        try:
            import numba  # noqa: F401

            _NUMBA_OK = True
        except ImportError:
            _NUMBA_OK = False
    return _NUMBA_OK


def available_backends() -> list[str]:
    """Backends usable right now, fastest first."""
    out = ["numba"] if numba_available() else []
    return out + ["numpy", "legacy"]


def configure(backend: "str | None") -> None:
    """Install a process-wide default backend (None restores the env).

    Used by the FilterService so one constructor argument pins the
    backend for every filter the storage tier consults.
    """
    global _CONFIGURED
    if backend is not None and backend not in _VALID:
        raise ValueError(
            f"unknown kernel backend {backend!r}; expected one of {_VALID}"
        )
    _CONFIGURED = backend


def resolve_backend(engine: "str | None" = None) -> str:
    """Resolve an ``engine=`` argument to a concrete backend name.

    Precedence: explicit argument > :func:`configure` > ``REPRO_KERNELS``
    env var > ``auto``.  ``auto`` resolves to ``numba`` when importable
    and ``numpy`` otherwise; asking for ``numba`` without the package
    installed falls back to ``numpy`` silently (graceful degradation —
    results are bit-identical, only speed differs).
    """
    choice = engine or _CONFIGURED or os.environ.get(_ENV, "auto")
    if choice not in _VALID:
        raise ValueError(
            f"unknown kernel backend {choice!r}; expected one of {_VALID}"
        )
    if choice == "auto":
        choice = "numba" if numba_available() else "numpy"
    elif choice == "numba" and not numba_available():
        choice = "numpy"
    return choice


def default_backend() -> str:
    """The backend batch queries use when no ``engine=`` is passed."""
    return resolve_backend(None)


def get_kernel(filt, backend: "str | None" = None):
    """The (cached) fused kernel bound to ``filt`` for ``backend``.

    Returns None for the ``legacy`` backend — callers fall through to
    the FetchCache engine.  Kernels are cached per filter and
    invalidated by ``_finalise_levels`` (the only operation that changes
    the level plan).
    """
    backend = resolve_backend(backend)
    if backend == "legacy":
        return None
    cached = getattr(filt, "_kernel_cache", None)
    if cached is not None and cached[0] == backend:
        return cached[1]
    if backend == "numba":
        from repro.core.kernels.numba_backend import NumbaKernel

        kernel = NumbaKernel(filt)
    else:
        from repro.core.kernels.fused import NumpyKernel

        kernel = NumpyKernel(filt)
    filt._kernel_cache = (backend, kernel)
    return kernel
