"""Fused decompose+probe batch kernel (pure numpy backend).

The legacy batch engine materialises a combined Bitmap Tree per
mini-tree (a ``k × (words+1)``-word gather plus shift/AND passes) and
dedupes fetches through a FetchCache (``np.unique`` + ``argsort`` +
``searchsorted`` per level) — then reads a *single bit* out of each
fetched BT.  This kernel computes that bit directly:

    probe(prefix, level)  =  AND_i  arr[pos_i + node - 1]           (node bit)
                          [ AND_i  arr[pos_i] ]                      (mirror root)

where ``pos_i`` is the ``i``-th window start of the prefix's mini-tree.
Hash mixing (splitmix64), position reduction, and the bit tests run
fused over preallocated uint64 arrays (:class:`Arena`), so one level of
one batch is ~``3k`` vectorised passes and ``k`` (or ``2k`` with the
mirror) single-word gathers — no BT materialisation, no sorting, no
per-level Python round-trips.

Bit-equivalence to the scalar descent (``tests/test_kernels.py``)
follows from the identity above: the scalar path ANDs ``k`` whole
windows and then reads bit ``node-1`` (zeroing the BT when the combined
root bit is absent); AND-then-read equals read-then-AND bit by bit.

The level-synchronous doubting traversal mirrors
:meth:`REncoder._descend_many` — identical frontier, budget and
expansion semantics — with every probe routed through the fused path.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.decompose import decompose_batch
from repro.telemetry.profiler import profile_phase
from repro.telemetry.tracing import current_span

__all__ = ["KernelTables", "NumpyKernel", "Arena"]

_U1 = np.uint64(1)
_U6 = np.uint64(6)
_U63 = np.uint64(63)
_C1 = np.uint64(0xBF58476D1CE4E5B9)
_C2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)

#: Layout codes shared with the numba backend.
LAYOUT_FLAT = 0
LAYOUT_BLOCKED = 1


class KernelTables:
    """Per-filter constants flattened into plain arrays.

    Everything a backend needs to probe without touching Python objects:
    per-level geometry (depth in group, group hash tag, mirror-root
    flag), the stored-level plan, and the RBF placement parameters.
    Built once per filter (lazily, via :func:`repro.core.kernels.get_kernel`)
    and shared by the numpy and numba backends.  The RBF *array* is not
    captured — backends read ``filt.rbf._array`` at call time, so
    in-place inserts are always visible.
    """

    __slots__ = (
        "key_bits", "group_bits", "k", "depth", "tag", "mirror",
        "stored", "next_stored", "deepest", "stored_levels",
        "point_levels", "max_expansion", "ancestor_checks",
        "layout_code", "seeds", "buckets", "span_bits", "nblocks",
        "num_offsets", "block_seed",
    )

    def __init__(self, filt) -> None:
        kb = filt.key_bits
        gb = filt.group_bits
        self.key_bits = kb
        self.group_bits = gb
        self.k = filt.rbf.k
        self.depth = np.zeros(kb + 1, dtype=np.int64)
        self.tag = np.zeros(kb + 1, dtype=np.uint64)
        self.mirror = np.zeros(kb + 1, dtype=bool)
        stored = np.asarray(filt._stored, dtype=bool).copy()
        for level in range(1, kb + 1):
            group, depth, hp_len = filt._locate(level)
            self.depth[level] = depth
            self.tag[level] = np.uint64(filt._group_tags[group])
            self.mirror[level] = bool(hp_len and stored[hp_len])
        self.stored = stored
        self.next_stored = np.asarray(filt._next_stored, dtype=np.int64)
        self.deepest = int(filt._deepest)
        self.stored_levels = np.asarray(filt._stored_sorted, dtype=np.int64)
        self.point_levels = self._plan_point_levels(filt)
        self.max_expansion = int(filt.max_expansion)
        self.ancestor_checks = bool(filt.ancestor_checks)
        params = filt.rbf.placement_params()
        self.seeds = np.asarray(params["seeds"], dtype=np.uint64)
        if params["layout"] == "blocked":
            self.layout_code = LAYOUT_BLOCKED
            self.buckets = np.uint64(params["num_offsets"])
            self.span_bits = np.uint64(params["span_bits"])
            self.nblocks = np.uint64(params["nblocks"])
            self.num_offsets = np.uint64(params["num_offsets"])
            self.block_seed = np.uint64(params["block_seed"])
        else:
            self.layout_code = LAYOUT_FLAT
            self.buckets = np.uint64(params["buckets"])
            self.span_bits = _U1
            self.nblocks = _U1
            self.num_offsets = _U1
            self.block_seed = _U1

    @staticmethod
    def _plan_point_levels(filt) -> np.ndarray:
        """Stored levels a point query probes, ascending.

        Mirrors the scalar paths: the base filter checks every stored
        ancestor (when ``ancestor_checks``) plus the key level itself;
        the PO variant probes only the levels inside the deepest
        mini-tree (its defining optimisation).
        """
        from repro.core.variants import REncoderPO

        kb = filt.key_bits
        if isinstance(filt, REncoderPO):
            deepest = filt._deepest
            group_start = ((deepest - 1) // filt.group_bits) * filt.group_bits
            levels = [
                l for l in filt._stored_sorted
                if group_start < l <= deepest
            ]
        elif filt.ancestor_checks:
            levels = [l for l in filt._stored_sorted if l <= kb]
        else:
            levels = [kb] if filt._stored[kb] else []
        return np.asarray(levels, dtype=np.int64)


class Arena:
    """Named, growable uint64/intp scratch buffers for one thread.

    The fused kernel's per-level temporaries (hash prefixes, positions,
    bit indices, accumulators) all come from here, so steady-state
    probing performs no allocations — the "preallocated uint64 arrays"
    the kernel contract promises.  Buffers grow geometrically and are
    never shared across threads (each kernel keeps one arena per thread
    via ``threading.local``).
    """

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: dict[str, np.ndarray] = {}

    def u64(self, name: str, n: int) -> np.ndarray:
        """The named uint64 buffer, grown (1.5x headroom) only when the
        current one holds fewer than ``n`` elements."""
        buf = self._bufs.get(name)
        if buf is None or buf.size < n:
            buf = np.empty(max(n + n // 2, 64), dtype=np.uint64)
            self._bufs[name] = buf
        return buf[:n]


def _mix64_into(x: np.ndarray, t: np.ndarray) -> None:
    """In-place splitmix64 finalizer over ``x`` (``t`` is scratch)."""
    np.right_shift(x, _S30, out=t)
    np.bitwise_xor(x, t, out=x)
    np.multiply(x, _C1, out=x)
    np.right_shift(x, _S27, out=t)
    np.bitwise_xor(x, t, out=x)
    np.multiply(x, _C2, out=x)
    np.right_shift(x, _S31, out=t)
    np.bitwise_xor(x, t, out=x)


class NumpyKernel:
    """Fused vectorised batch kernel over a bound filter."""

    backend = "numpy"

    def __init__(self, filt) -> None:
        self.filt = filt
        self.tables = KernelTables(filt)
        self._local = threading.local()

    def _arena(self) -> Arena:
        arena = getattr(self._local, "arena", None)
        if arena is None:
            arena = self._local.arena = Arena()
        return arena

    # ------------------------------------------------------------------
    # fused probe
    # ------------------------------------------------------------------
    def _probe_bits(self, prefixes: np.ndarray, level: int) -> np.ndarray:
        """Membership bits for same-level prefixes — fused bit tests.

        Bit-identical to ``REncoder._probe``: the node bit ANDed over
        the ``k`` windows, ANDed with the mirror-root bit when the
        hash-prefix level is stored.
        """
        t = self.tables
        a = self._arena()
        arr = self.filt.rbf._array
        n = prefixes.size
        depth = np.uint64(t.depth[level])
        maskd = (_U1 << depth) - _U1
        mirror = bool(t.mirror[level])

        hp = a.u64("hp", n)
        np.right_shift(prefixes, depth, out=hp)
        np.bitwise_xor(hp, t.tag[level], out=hp)
        nodebit = a.u64("nodebit", n)
        np.bitwise_and(prefixes, maskd, out=nodebit)
        np.add(nodebit, maskd, out=nodebit)

        acc = a.u64("acc", n)
        pos = a.u64("pos", n)
        tmp = a.u64("tmp", n)
        scr = a.u64("scr", n)
        base = None
        if t.layout_code == LAYOUT_BLOCKED:
            base = a.u64("base", n)
            np.bitwise_xor(hp, t.block_seed, out=base)
            _mix64_into(base, tmp)
            np.mod(base, t.nblocks, out=base)
            np.multiply(base, t.span_bits, out=base)
        first = True
        for seed in t.seeds:
            np.bitwise_xor(hp, seed, out=pos)
            _mix64_into(pos, tmp)
            np.mod(pos, t.buckets, out=pos)
            if base is not None:
                np.add(pos, base, out=pos)
            # Node bit: arr[(pos + nodebit) >> 6] >> ((pos + nodebit) & 63).
            np.add(pos, nodebit, out=tmp)
            np.right_shift(tmp, _U6, out=scr)
            word = np.take(arr, scr.astype(np.intp, copy=False))
            np.bitwise_and(tmp, _U63, out=tmp)
            np.right_shift(word, tmp, out=word)
            if first:
                np.copyto(acc, word)
            else:
                np.bitwise_and(acc, word, out=acc)
            first = False
            if mirror:
                # Root bit of the same window: arr[pos >> 6] >> (pos & 63).
                np.right_shift(pos, _U6, out=scr)
                word = np.take(arr, scr.astype(np.intp, copy=False))
                np.bitwise_and(pos, _U63, out=tmp)
                np.right_shift(word, tmp, out=word)
                np.bitwise_and(acc, word, out=acc)
        np.bitwise_and(acc, _U1, out=acc)
        return acc != 0

    # ------------------------------------------------------------------
    # range queries
    # ------------------------------------------------------------------
    def range_many(self, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        """Batch range membership — fused pipeline, scalar-identical."""
        filt = self.filt
        t = self.tables
        n = los.size
        answers = np.zeros(n, dtype=bool)
        if n == 0:
            return answers
        probes = 0
        with profile_phase("kernel.decompose"):
            qidx, prefixes, lengths = decompose_batch(
                los, his, t.key_bits, ordered=False
            )
        whole = lengths == 0
        if whole.any():
            answers[qidx[whole]] = filt.n_keys > 0
            keep = ~whole
            qidx, prefixes, lengths = qidx[keep], prefixes[keep], lengths[keep]
        alive = np.ones(lengths.size, dtype=bool)
        if t.ancestor_checks and lengths.size:
            with profile_phase("kernel.ancestors"):
                max_len = int(lengths.max())
                for level in t.stored_levels:
                    if level >= max_len:
                        break
                    sel = np.flatnonzero(alive & (lengths > level))
                    if sel.size == 0:
                        continue
                    ancestors = prefixes[sel] >> (
                        lengths[sel] - level
                    ).astype(np.uint64)
                    ok = self._probe_bits(ancestors, int(level))
                    probes += sel.size
                    alive[sel[~ok]] = False
        deep = lengths > t.deepest
        answers[qidx[alive & deep]] = True
        undecided = np.flatnonzero(alive & ~deep)
        if undecided.size:
            with profile_phase("kernel.descend"):
                probes += self._descend(
                    qidx[undecided],
                    prefixes[undecided],
                    lengths[undecided],
                    answers,
                )
        self._account(probes)
        return answers

    def _descend(
        self,
        qidx: np.ndarray,
        prefixes: np.ndarray,
        lengths: np.ndarray,
        answers: np.ndarray,
    ) -> int:
        """Level-synchronous doubting traversal with fused probes.

        Frontier, budget and expansion bookkeeping are exactly
        :meth:`REncoder._descend_many`'s; only the probe is fused.
        Returns the probe count for accounting.
        """
        t = self.tables
        m = qidx.size
        deepest = t.deepest
        probes = 0
        budget = np.full(m, t.max_expansion, dtype=np.int64)
        done = np.zeros(m, dtype=bool)
        pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        present = np.flatnonzero(
            np.bincount(lengths.astype(np.int64), minlength=t.key_bits + 1)
        )
        for level in present:
            sel = np.flatnonzero(lengths == level)
            pending[int(level)] = [(sel, prefixes[sel])]
        for level in range(int(present[0]), deepest + 1):
            bucket = pending.pop(level, None)
            if not bucket:
                continue
            if len(bucket) == 1:
                pid, pfx = bucket[0]
            else:
                pid = np.concatenate([b[0] for b in bucket])
                pfx = np.concatenate([b[1] for b in bucket])
            live = ~done[pid] & ~answers[qidx[pid]]
            pid, pfx = pid[live], pfx[live]
            if pid.size == 0:
                continue
            if t.stored[level]:
                ok = self._probe_bits(pfx, level)
                probes += pid.size
                pid, pfx = pid[ok], pfx[ok]
                if pid.size == 0:
                    continue
            if level >= deepest:
                done[pid] = True
                answers[qidx[pid]] = True
                continue
            nxt = int(t.next_stored[level])
            gap = nxt - level
            cost = min(1 << gap, t.max_expansion + 1)
            np.subtract.at(budget, pid, cost)
            exhausted = budget[pid] < 0
            if exhausted.any():
                hit = pid[exhausted]
                done[hit] = True
                answers[qidx[hit]] = True
                pid, pfx = pid[~exhausted], pfx[~exhausted]
                if pid.size == 0:
                    continue
            ext = np.arange(1 << gap, dtype=np.uint64)
            children = (pfx[:, None] << np.uint64(gap)) | ext[None, :]
            pending.setdefault(nxt, []).append(
                (np.repeat(pid, 1 << gap), children.ravel())
            )
        return probes

    # ------------------------------------------------------------------
    # point queries
    # ------------------------------------------------------------------
    def point_many(self, keys: np.ndarray) -> np.ndarray:
        """Batch point membership via the fused probe, scalar-identical."""
        t = self.tables
        n = keys.size
        alive = np.ones(n, dtype=bool)
        if n == 0:
            return alive
        kb = np.uint64(t.key_bits)
        probes = 0
        for level in t.point_levels:
            sel = np.flatnonzero(alive)
            if sel.size == 0:
                break
            ok = self._probe_bits(
                keys[sel] >> (kb - np.uint64(level)), int(level)
            )
            probes += sel.size
            alive[sel[~ok]] = False
        self._account(probes)
        return alive

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _account(self, probes: int) -> None:
        """Fold one batch's probe count into the filter's statistics.

        Each fused probe reads ``k`` windows (one word each), so it
        advances ``fetch_count`` by ``k`` exactly like a scalar
        ``fetch_bt`` — probe accounting stays comparable across engines.
        """
        if not probes:
            return
        rbf = self.filt.rbf
        with rbf._stats_lock:
            rbf.fetch_count += rbf.k * probes
        sp = current_span()
        if sp is not None:
            sp.add("filter_probes", probes)
            sp.add("rbf_fetches", rbf.k * probes)
