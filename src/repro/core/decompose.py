"""Dyadic range decomposition — the paper's Decomposition stage.

A range query ``[lo, hi]`` over ``L``-bit keys is split into the minimal set
of *dyadic* sub-ranges, each exactly the span of one key prefix, so that the
range query becomes at most ``2L`` (and for ranges of size ``R``, at most
``2 log2 R``) prefix membership probes (Section III-B).

Two equivalent algorithms are provided and cross-checked by tests:

* :func:`decompose` — the fast iterative greedy walk: repeatedly peel off
  the largest aligned power-of-two block starting at ``lo``;
* :func:`decompose_recursive` — the paper's top-down formulation
  (compare the prefix range ``Rp`` against the target ``Rt``; recurse on
  intersection, emit on containment).

Both return ``(prefix_value, prefix_len)`` pairs ordered left to right.
A prefix ``(p, l)`` covers keys ``[p << (L-l), ((p+1) << (L-l)) - 1]``.
The empty prefix is returned as ``(0, 0)`` when the query covers the whole
domain.
"""

from __future__ import annotations

__all__ = [
    "decompose",
    "decompose_recursive",
    "prefix_range",
    "covering_prefix",
]


def prefix_range(prefix: int, length: int, key_bits: int) -> tuple[int, int]:
    """The inclusive key range ``[lo, hi]`` covered by a prefix.

    >>> prefix_range(0b001, 3, 4)
    (2, 3)
    """
    if not 0 <= length <= key_bits:
        raise ValueError(f"prefix length {length} outside [0, {key_bits}]")
    span = key_bits - length
    lo = prefix << span
    return lo, lo + (1 << span) - 1


def covering_prefix(lo: int, hi: int, key_bits: int) -> tuple[int, int]:
    """The shortest single prefix whose range contains ``[lo, hi]``.

    Used by tests and by SuRF-style filters; unlike :func:`decompose` the
    result may cover keys outside the query.
    """
    _check(lo, hi, key_bits)
    length = key_bits
    while length > 0 and (lo >> (key_bits - length)) != (hi >> (key_bits - length)):
        length -= 1
    return (lo >> (key_bits - length)) if length else 0, length


def _check(lo: int, hi: int, key_bits: int) -> None:
    if key_bits < 1:
        raise ValueError(f"key_bits must be positive, got {key_bits}")
    top = (1 << key_bits) - 1
    if not 0 <= lo <= hi <= top:
        raise ValueError(
            f"invalid range [{lo}, {hi}] for {key_bits}-bit keys"
        )


def decompose(lo: int, hi: int, key_bits: int) -> list[tuple[int, int]]:
    """Minimal dyadic cover of ``[lo, hi]``, left to right (iterative).

    Greedy walk: at position ``cur`` the largest usable block is the largest
    power of two that both divides ``cur`` (alignment) and fits in the
    remaining span ``hi - cur + 1``.

    >>> decompose(0, 4, 4)
    [(0, 2), (4, 4)]
    >>> decompose(2, 15, 4)
    [(1, 3), (1, 2), (1, 1)]
    """
    _check(lo, hi, key_bits)
    domain = 1 << key_bits
    out: list[tuple[int, int]] = []
    cur = lo
    remaining = hi - lo + 1
    while remaining > 0:
        align = cur & -cur if cur else domain
        size = min(align, 1 << (remaining.bit_length() - 1))
        length = key_bits - size.bit_length() + 1
        out.append((cur >> (key_bits - length) if length else 0, length))
        cur += size
        remaining -= size
    return out


def decompose_recursive(lo: int, hi: int, key_bits: int) -> list[tuple[int, int]]:
    """Minimal dyadic cover of ``[lo, hi]`` — the paper's top-down algorithm.

    Starts from the empty prefix (``Rp = [0, maxkey]``) and compares each
    candidate prefix range against the target: disjoint → drop, contained →
    emit, intersecting → recurse into both children.
    """
    _check(lo, hi, key_bits)
    out: list[tuple[int, int]] = []

    def visit(prefix: int, length: int) -> None:
        p_lo, p_hi = prefix_range(prefix, length, key_bits)
        if p_hi < lo or p_lo > hi:
            return
        if lo <= p_lo and p_hi <= hi:
            out.append((prefix, length))
            return
        visit(prefix << 1, length + 1)
        visit((prefix << 1) | 1, length + 1)

    visit(0, 0)
    return out
