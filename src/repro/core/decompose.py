"""Dyadic range decomposition — the paper's Decomposition stage.

A range query ``[lo, hi]`` over ``L``-bit keys is split into the minimal set
of *dyadic* sub-ranges, each exactly the span of one key prefix, so that the
range query becomes at most ``2L`` (and for ranges of size ``R``, at most
``2 log2 R``) prefix membership probes (Section III-B).

Three equivalent algorithms are provided and cross-checked by tests:

* :func:`decompose` — the fast iterative greedy walk: repeatedly peel off
  the largest aligned power-of-two block starting at ``lo``;
* :func:`decompose_recursive` — the paper's top-down formulation
  (compare the prefix range ``Rp`` against the target ``Rt``; recurse on
  intersection, emit on containment);
* :func:`decompose_batch` — the greedy walk run in lockstep over a whole
  query batch with numpy, emitting flat ``(query, prefix, length)``
  arrays for the batch query engine.

All return ``(prefix_value, prefix_len)`` pairs ordered left to right.
A prefix ``(p, l)`` covers keys ``[p << (L-l), ((p+1) << (L-l)) - 1]``.
The empty prefix is returned as ``(0, 0)`` when the query covers the whole
domain.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "decompose",
    "decompose_batch",
    "decompose_recursive",
    "prefix_range",
    "covering_prefix",
]


def prefix_range(prefix: int, length: int, key_bits: int) -> tuple[int, int]:
    """The inclusive key range ``[lo, hi]`` covered by a prefix.

    >>> prefix_range(0b001, 3, 4)
    (2, 3)
    """
    if not 0 <= length <= key_bits:
        raise ValueError(f"prefix length {length} outside [0, {key_bits}]")
    span = key_bits - length
    lo = prefix << span
    return lo, lo + (1 << span) - 1


def covering_prefix(lo: int, hi: int, key_bits: int) -> tuple[int, int]:
    """The shortest single prefix whose range contains ``[lo, hi]``.

    Used by tests and by SuRF-style filters; unlike :func:`decompose` the
    result may cover keys outside the query.
    """
    _check(lo, hi, key_bits)
    length = key_bits
    while length > 0 and (lo >> (key_bits - length)) != (hi >> (key_bits - length)):
        length -= 1
    return (lo >> (key_bits - length)) if length else 0, length


def _check(lo: int, hi: int, key_bits: int) -> None:
    if key_bits < 1:
        raise ValueError(f"key_bits must be positive, got {key_bits}")
    top = (1 << key_bits) - 1
    if not 0 <= lo <= hi <= top:
        raise ValueError(
            f"invalid range [{lo}, {hi}] for {key_bits}-bit keys"
        )


def decompose(lo: int, hi: int, key_bits: int) -> list[tuple[int, int]]:
    """Minimal dyadic cover of ``[lo, hi]``, left to right (iterative).

    Greedy walk: at position ``cur`` the largest usable block is the largest
    power of two that both divides ``cur`` (alignment) and fits in the
    remaining span ``hi - cur + 1``.

    >>> decompose(0, 4, 4)
    [(0, 2), (4, 4)]
    >>> decompose(2, 15, 4)
    [(1, 3), (1, 2), (1, 1)]
    """
    _check(lo, hi, key_bits)
    domain = 1 << key_bits
    out: list[tuple[int, int]] = []
    cur = lo
    remaining = hi - lo + 1
    while remaining > 0:
        align = cur & -cur if cur else domain
        size = min(align, 1 << (remaining.bit_length() - 1))
        length = key_bits - size.bit_length() + 1
        out.append((cur >> (key_bits - length) if length else 0, length))
        cur += size
        remaining -= size
    return out


def decompose_recursive(lo: int, hi: int, key_bits: int) -> list[tuple[int, int]]:
    """Minimal dyadic cover of ``[lo, hi]`` — the paper's top-down algorithm.

    Starts from the empty prefix (``Rp = [0, maxkey]``) and compares each
    candidate prefix range against the target: disjoint → drop, contained →
    emit, intersecting → recurse into both children.
    """
    _check(lo, hi, key_bits)
    out: list[tuple[int, int]] = []

    def visit(prefix: int, length: int) -> None:
        p_lo, p_hi = prefix_range(prefix, length, key_bits)
        if p_hi < lo or p_lo > hi:
            return
        if lo <= p_lo and p_hi <= hi:
            out.append((prefix, length))
            return
        visit(prefix << 1, length + 1)
        visit((prefix << 1) | 1, length + 1)

    visit(0, 0)
    return out


def decompose_batch(
    los: np.ndarray, his: np.ndarray, key_bits: int, *, ordered: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dyadic cover of a whole query batch, vectorised.

    Runs the greedy walk of :func:`decompose` in lockstep over every query
    with numpy: each iteration peels the largest aligned power-of-two block
    off every still-unfinished query, so the loop runs ``max pieces per
    query`` times (at most ``2 L``) regardless of batch size.

    Returns three equal-length flat arrays ``(qidx, prefixes, lengths)``:
    piece ``j`` belongs to query ``qidx[j]`` and is the prefix
    ``(prefixes[j], lengths[j])``.  Pieces of one query appear in the same
    left-to-right order :func:`decompose` emits, and queries appear in
    ascending index order.  A whole-domain query yields one ``(0, 0)``
    piece, exactly like the scalar walk.

    ``ordered=False`` skips the final stable sort and returns pieces in
    walk-round order (all first pieces, then all second pieces, ...).
    The set of pieces is identical; callers that treat the cover as a
    set — like the fused batch kernels — avoid an ``O(P log P)``
    argsort that dominates decomposition time on large batches.
    """
    if key_bits < 1:
        raise ValueError(f"key_bits must be positive, got {key_bits}")
    los = np.atleast_1d(np.asarray(los, dtype=np.uint64))
    his = np.atleast_1d(np.asarray(his, dtype=np.uint64))
    if los.shape != his.shape:
        raise ValueError("los and his must have equal length")
    top = np.uint64((1 << key_bits) - 1)
    if los.size and (
        (los > his).any() or int(his.max()) > int(top)
    ):
        raise ValueError(f"invalid range in batch for {key_bits}-bit keys")

    out_q: list[np.ndarray] = []
    out_p: list[np.ndarray] = []
    out_l: list[np.ndarray] = []

    qidx = np.arange(los.size, dtype=np.int64)
    if key_bits == 64:
        # ``hi - lo + 1`` wraps to 0 for the full 64-bit domain; emit the
        # empty prefix directly, as the scalar walk's python ints would.
        full = (los == np.uint64(0)) & (his == top)
        if full.any():
            sel = qidx[full]
            out_q.append(sel)
            out_p.append(np.zeros(sel.size, dtype=np.uint64))
            out_l.append(np.zeros(sel.size, dtype=np.int64))
            qidx = qidx[~full]
            los, his = los[~full], his[~full]

    cur = los.copy()
    remaining = his - los + np.uint64(1)
    q = qidx
    one = np.uint64(1)
    while cur.size:
        # Largest aligned block at ``cur``: min(lowest set bit of cur,
        # highest power of two <= remaining).  ``cur == 0`` means alignment
        # is unbounded; 2^63 is always >= the msb of a uint64 remaining.
        align = np.where(
            cur == 0, one << np.uint64(63), cur & (~cur + one)
        )
        m = remaining.copy()
        for s in (1, 2, 4, 8, 16, 32):
            m |= m >> np.uint64(s)
        msb = m - (m >> one)
        size = np.minimum(align, msb)
        log_size = np.bitwise_count(size - one).astype(np.uint64)
        out_q.append(q)
        out_p.append(cur >> log_size)
        out_l.append(np.int64(key_bits) - log_size.astype(np.int64))
        cur = cur + size  # may wrap at the domain end; remaining hits 0 too
        remaining = remaining - size
        keep = remaining > 0
        if not keep.all():
            cur, remaining, q = cur[keep], remaining[keep], q[keep]

    if not out_q:
        empty = np.zeros(0, dtype=np.int64)
        return empty, np.zeros(0, dtype=np.uint64), empty
    all_q = np.concatenate(out_q)
    all_p = np.concatenate(out_p)
    all_l = np.concatenate(out_l)
    if not ordered:
        return all_q, all_p, all_l
    # Rounds were emitted in walk order, so a stable sort by query index
    # recovers each query's left-to-right piece order.
    order = np.argsort(all_q, kind="stable")
    return all_q[order], all_p[order], all_l[order]
