"""Explicit prefix segment tree — the exact reference oracle.

REncoder never materialises the segment tree; it stores the tree's nodes in
the Range Bloom Filter.  This module *does* materialise it, as one Python
set of prefixes per level.  It serves three roles:

* a zero-false-positive reference implementation of range membership used
  by the property tests (every probabilistic filter must agree with it on
  all negatives it reports, and it defines ground truth for FPR);
* the source of the per-level distinct-prefix counts ``n1`` that drive the
  adaptive stored-level analysis in Section III-C (the ``A``/``B`` dataset
  example) and Rosetta's memory allocation;
* the LCP statistics (``l_kk``, ``l_kq``) used by REncoderSS / REncoderSE.

Keys are unsigned ``key_bits``-bit integers.  Level ``l`` holds the distinct
prefixes of length ``l``; level 0 is the root (present iff the set is
non-empty).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.decompose import decompose

__all__ = [
    "PrefixSegmentTree",
    "level_cardinalities",
    "max_key_lcp",
    "max_key_query_lcp",
]


class PrefixSegmentTree:
    """Exact segment tree over all prefixes of a key set."""

    def __init__(self, keys: Iterable[int], key_bits: int = 64) -> None:
        if key_bits < 1:
            raise ValueError(f"key_bits must be positive, got {key_bits}")
        self.key_bits = key_bits
        self.levels: list[set[int]] = [set() for _ in range(key_bits + 1)]
        top = (1 << key_bits) - 1
        count = 0
        for key in keys:
            if not 0 <= key <= top:
                raise ValueError(f"key {key} outside {key_bits}-bit domain")
            count += 1
            for length in range(key_bits, -1, -1):
                prefix = key >> (key_bits - length)
                if prefix in self.levels[length]:
                    break  # all shorter prefixes are present already
                self.levels[length].add(prefix)
        self.n_keys = count

    def contains_prefix(self, prefix: int, length: int) -> bool:
        """Is ``prefix`` (of ``length`` bits) a prefix of any stored key?"""
        if not 0 <= length <= self.key_bits:
            raise ValueError(f"length {length} outside [0, {self.key_bits}]")
        return prefix in self.levels[length]

    def query_range(self, lo: int, hi: int) -> bool:
        """Exact range membership via dyadic decomposition (never wrong)."""
        return any(
            prefix in self.levels[length]
            for prefix, length in decompose(lo, hi, self.key_bits)
        )

    def query_point(self, key: int) -> bool:
        """Exact point membership."""
        return key in self.levels[self.key_bits]

    def level_sizes(self) -> list[int]:
        """Distinct prefix count per level, index = prefix length."""
        return [len(level) for level in self.levels]

    def total_nodes(self, levels: Iterable[int] | None = None) -> int:
        """Total distinct prefixes over the given levels (default: all)."""
        if levels is None:
            levels = range(self.key_bits + 1)
        return sum(len(self.levels[l]) for l in levels)


def level_cardinalities(
    keys: np.ndarray, key_bits: int, levels: Sequence[int]
) -> dict[int, int]:
    """Distinct prefix count for each requested level, vectorised.

    Equivalent to :meth:`PrefixSegmentTree.level_sizes` restricted to
    ``levels`` but avoids building the full tree; used by the adaptive
    construction on large key sets.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    out: dict[int, int] = {}
    for length in levels:
        if not 0 <= length <= key_bits:
            raise ValueError(f"level {length} outside [0, {key_bits}]")
        shift = np.uint64(key_bits - length)
        out[length] = int(len(np.unique(keys >> shift))) if length else (
            1 if len(keys) else 0
        )
    return out


def _lcp(a: int, b: int, key_bits: int) -> int:
    """Length of the longest common prefix of two ``key_bits``-bit ints."""
    diff = a ^ b
    return key_bits if diff == 0 else key_bits - diff.bit_length()


def max_key_lcp(keys: np.ndarray, key_bits: int) -> int:
    """``l_kk`` — max LCP over all distinct key pairs (Section III-C).

    The maximum is attained by an adjacent pair in sorted order, so this is
    a single vectorised XOR over the sorted array.
    """
    keys = np.unique(np.asarray(keys, dtype=np.uint64))
    if len(keys) < 2:
        return 0
    diffs = keys[1:] ^ keys[:-1]
    # bit_length via log2 on float is unsafe near 2^53; use a loop over the
    # small candidate set instead: the minimal diff gives the maximal LCP.
    min_diff = int(diffs.min())
    return key_bits - min_diff.bit_length()


def max_key_query_lcp(
    keys: np.ndarray,
    query_bounds: Iterable[int],
    key_bits: int,
) -> int:
    """``l_kq`` — max LCP between any key and any sampled query boundary.

    REncoderSE samples query boundaries (both endpoints of each range) and
    uses this statistic to decide how deep the stored levels must reach to
    tell correlated queries apart from stored keys.  Boundaries that *are*
    stored keys are skipped: a true positive needs no distinguishing level.
    """
    keys = np.unique(np.asarray(keys, dtype=np.uint64))
    if len(keys) == 0:
        return 0
    best = 0
    for bound in query_bounds:
        idx = int(np.searchsorted(keys, np.uint64(bound)))
        for neighbour in (idx - 1, idx, idx + 1):
            if 0 <= neighbour < len(keys):
                key = int(keys[neighbour])
                if key == bound:
                    continue
                best = max(best, _lcp(key, bound, key_bits))
    return best
