"""Typed error hierarchy for persistence and storage faults.

Every failure mode the stack can recover from gets its own exception
type, so callers can distinguish *retry* (transient I/O) from *rebuild*
(corruption) without string-matching messages:

* :class:`FilterError` — root of the hierarchy; anything raised by the
  persistence or fault-injection layers is one of these.
* :class:`FilterCorruptionError` — the bytes are wrong: checksum
  mismatch, bad magic, hostile or inconsistent metadata, a failed
  :meth:`~repro.filters.base.RangeFilter.verify_invariants` self-check.
  Also a :class:`ValueError`, so pre-existing callers that caught
  ``ValueError`` from ``serialize.loads`` keep working.
* :class:`TruncatedError` — a corruption whose specific shape is "the
  buffer ends before the declared data does" (torn writes, short reads).
* :class:`TransientIOError` — the read itself failed but the data is
  presumed intact; retrying may succeed.  Also an :class:`OSError`,
  matching what a real storage backend would raise.

The recovery policy built on top (``storage/sstable.py``): transient
errors are retried with capped exponential backoff; corruption of a
persisted filter triggers an in-place rebuild from the SSTable's keys,
with the filter treated as all-positive in between so the one-sided
no-false-negative guarantee is never violated.
"""

from __future__ import annotations

__all__ = [
    "FilterError",
    "FilterCorruptionError",
    "TruncatedError",
    "TransientIOError",
    "TornAppendError",
    "DeadlineExceededError",
]


class FilterError(Exception):
    """Base class for all persistence / storage-fault errors."""


class FilterCorruptionError(FilterError, ValueError):
    """The persisted bytes (or a live structure) fail validation.

    Raised on checksum mismatch, bad magic, hostile metadata, payload
    geometry mismatch, or a failed invariant self-check.  Not retryable:
    the correct response is to rebuild the filter from its source keys.
    """


class TruncatedError(FilterCorruptionError):
    """The input ends before the declared data does (torn write)."""


class TornAppendError(FilterError, OSError):
    """A blob append landed torn: only a prefix of the suffix persisted.

    Raised by :meth:`repro.storage.env.StorageEnv.append_blob` *after*
    storing the torn prefix — exactly like a crashed ``write(2)`` that
    persisted part of the buffer.  The caller must not acknowledge the
    appended records; the write-ahead log responds by rotating to a
    fresh segment and re-appending, and replay truncates the torn tail.
    """


class TransientIOError(FilterError, OSError):
    """A read failed but the underlying data is presumed intact.

    Retryable: :meth:`repro.storage.env.StorageEnv.read_with_retry`
    retries these with capped exponential backoff on the simulated
    clock before giving up.
    """


class DeadlineExceededError(FilterError, TimeoutError):
    """A query's simulated-time budget ran out mid-execution.

    Raised by :class:`~repro.storage.env.StorageEnv` when a second-level
    read or a retry backoff pushes the simulated clock past the deadline
    installed by :meth:`~repro.storage.env.StorageEnv.deadline_scope`.
    The serving layer answers the query *degraded* (all-positive) instead
    of blocking, so the one-sided guarantee survives the timeout: a
    deadline can cost extra I/O downstream, never a false negative.
    """
