"""The paper's contribution: Bitmap Trees, the Range Bloom Filter, dyadic
decomposition, the exact segment-tree oracle, and REncoder with all its
variants (base, SS, SE, PO, Two-Stage)."""

from repro.core.bitmap_tree import BitmapTreeCodec, node_index, path_nodes
from repro.core.errors import (
    FilterCorruptionError,
    FilterError,
    TransientIOError,
    TruncatedError,
)
from repro.core.decompose import (
    covering_prefix,
    decompose,
    decompose_recursive,
    prefix_range,
)
from repro.core.generic import (
    GenericPrefixFilter,
    LocalTreeEncoder,
    QuadtreeFilter,
)
from repro.core.rbf import RangeBloomFilter
from repro.core.rencoder import DEFAULT_RMAX, REncoder
from repro.core.segment_tree import (
    PrefixSegmentTree,
    level_cardinalities,
    max_key_lcp,
    max_key_query_lcp,
)
from repro.core.serialize import dumps, loads
from repro.core.two_stage import (
    TwoStageREncoder,
    double_to_key,
    float_to_key,
    key_to_double,
    key_to_float,
)
from repro.core.variants import REncoderPO, REncoderSE, REncoderSS, build_variant

__all__ = [
    "BitmapTreeCodec",
    "node_index",
    "path_nodes",
    "FilterError",
    "FilterCorruptionError",
    "TransientIOError",
    "TruncatedError",
    "covering_prefix",
    "decompose",
    "decompose_recursive",
    "prefix_range",
    "GenericPrefixFilter",
    "LocalTreeEncoder",
    "QuadtreeFilter",
    "RangeBloomFilter",
    "DEFAULT_RMAX",
    "REncoder",
    "PrefixSegmentTree",
    "level_cardinalities",
    "max_key_lcp",
    "max_key_query_lcp",
    "TwoStageREncoder",
    "dumps",
    "loads",
    "double_to_key",
    "float_to_key",
    "key_to_double",
    "key_to_float",
    "REncoderPO",
    "REncoderSE",
    "REncoderSS",
    "build_variant",
]
