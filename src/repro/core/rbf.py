"""Range Bloom Filter (RBF) — a Bloom filter that inserts whole bitmaps.

The RBF is the paper's storage layer (Section III-A, Algorithm 2).  It is a
plain ``m``-bit array.  It differs from a standard Bloom filter in its unit
of work:

* **insert** hashes a *hash prefix* to ``k`` positions and ORs an entire
  Bitmap Tree into the array starting at each position
  (``*(array + pos) |= bt`` — the paper's single AVX-512 store);
* **fetch** hashes a hash prefix to the same ``k`` positions and returns
  the AND of the ``k`` BT-sized windows — a combined BT in which a node bit
  is 1 only if *all* ``k`` copies are 1, so one fetch answers membership
  for every node of the mini-tree (the locality the paper exploits).

Positions are *bit-granular and unaligned*: a BT may start at any bit
offset, so BTs from different hash prefixes overlap at arbitrary shifts
(the paper's ``*(array + pos) |= bt`` with the pointer read at its finest
granularity; SIMD realises it with one shift before the wide OR).  This
is essential for accuracy, not a detail — under any coarser aligned
placement, the couple of bit positions per window that hold each
mini-tree's shallow nodes saturate long before the deep-node positions,
destroying the discriminating power of the shallow levels.  Bit-granular
placement keeps the density uniform at the global load factor ``P1``,
which is what the Section IV analysis assumes (and what reproduces the
paper's accuracy results — see EXPERIMENTS.md).

Bit-for-bit, the ones written are the same prefixes Rosetta's per-level
Bloom filters would write (``k`` positions each), which is why the paper
argues REncoder's accuracy matches Rosetta while needing a fraction of the
memory accesses.

Implementation notes
--------------------
The array is ``numpy.uint64`` with one pad word, so an unaligned window
is two slice operations (shift low | shift high); both the multi-word
(``group_bits >= 6``) and sub-word (the worked example's 32-bit BTs)
layouts are exercised by the tests.

Bulk construction uses ``np.bitwise_or.at`` so inserting one segment-tree
level for the whole key set is a handful of vectorised calls.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.hashing.mix64 import HashFamily
from repro.telemetry.instrument import Instrumented
from repro.telemetry.tracing import current_span

__all__ = ["RangeBloomFilter", "FetchScratch"]

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


class FetchScratch:
    """Reusable intermediate buffers for :meth:`RangeBloomFilter.fetch_bt_many`.

    One instance per caller (the :class:`~repro.core.rencoder.FetchCache`
    owns one), never shared across threads.  Buffers grow geometrically
    and are reused across batches, so steady-state batch probing does no
    per-call gather/shift allocations.
    """

    __slots__ = ("_idx", "_win", "_wnd", "_out")

    def __init__(self) -> None:
        self._idx: "np.ndarray | None" = None
        self._win: "np.ndarray | None" = None
        self._wnd: "np.ndarray | None" = None
        self._out: "np.ndarray | None" = None

    def buffers(
        self, n: int, w: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Index / gather / window buffers sized for ``n`` rows of ``w``
        words, grown (1.5x headroom) only when the current ones are too
        small or the geometry changed."""
        if (
            self._idx is None
            or self._idx.shape[0] < n
            or self._idx.shape[1] != w + 1
        ):
            rows = max(n + n // 2, 64)
            self._idx = np.empty((rows, w + 1), dtype=np.intp)
            self._win = np.empty((rows, w + 1), dtype=np.uint64)
            self._wnd = np.empty((rows, w), dtype=np.uint64)
        return self._idx[:n], self._win[:n], self._wnd[:n]

    def out(self, n: int, w: int) -> np.ndarray:
        """Reusable result buffer for the combined BTs (``(n, w)``)."""
        if (
            self._out is None
            or self._out.shape[0] < n
            or self._out.shape[1] != w
        ):
            self._out = np.empty((max(n + n // 2, 64), w), dtype=np.uint64)
        return self._out


class RangeBloomFilter(Instrumented):
    """Bloom filter over Bitmap Trees with unaligned block placement.

    Parameters
    ----------
    total_bits:
        Memory budget ``m`` in bits; rounded down to whole words (at least
        one Bitmap Tree).
    k:
        Number of hash functions (window positions per insert/fetch).
    group_bits:
        ``B`` — levels per mini-tree; a Bitmap Tree is ``2^(B+1)`` bits.
    seed:
        Master seed for the hash family.
    layout:
        ``"flat"`` (default) places each of the ``k`` windows
        independently anywhere in the array — the paper's layout.
        ``"blocked"`` dispatches to
        :class:`~repro.core.kernels.layout.BlockedRBF`, which confines
        all ``k`` windows of one hash prefix to a single cache-line-sized
        block so a probe touches one contiguous region of memory.
    """

    #: Placement-layout tag; subclasses with a different placement
    #: (e.g. ``BlockedRBF``) override it.  Serialized alongside the
    #: geometry so a reloaded filter reconstructs the same layout.
    layout = "flat"

    def __new__(
        cls,
        total_bits: int,
        k: int = 2,
        group_bits: int = 8,
        seed: int = 0,
        block_bits: "int | None" = None,
        layout: str = "flat",
    ) -> "RangeBloomFilter":
        if cls is RangeBloomFilter and layout != "flat":
            if layout != "blocked":
                raise ValueError(
                    f"unknown RBF layout {layout!r}; expected 'flat' or "
                    f"'blocked'"
                )
            from repro.core.kernels.layout import BlockedRBF

            return super().__new__(BlockedRBF)
        return super().__new__(cls)

    def __init__(
        self,
        total_bits: int,
        k: int = 2,
        group_bits: int = 8,
        seed: int = 0,
        block_bits: int | None = None,
        layout: str = "flat",
    ) -> None:
        if total_bits < 1:
            raise ValueError(f"total_bits must be positive, got {total_bits}")
        if not 1 <= group_bits <= 9:
            raise ValueError(f"group_bits must be in [1, 9], got {group_bits}")
        self.group_bits = group_bits
        if block_bits is None:
            block_bits = 1 << (group_bits + 1)
        if block_bits < 8 or block_bits & (block_bits - 1):
            raise ValueError(
                f"block_bits must be a power of two >= 8, got {block_bits}"
            )
        self.block_bits = block_bits
        self.words_per_block = max(1, self.block_bits // 64)
        nwords = max(self.words_per_block, total_bits // 64)
        self.bits = nwords * 64
        self.k = k
        self.seed = seed
        # One zero pad word lets unaligned window reads/writes use plain
        # slices without bounds branches; it is never set and is not
        # counted in ``bits``.
        self._array = np.zeros(nwords + 1, dtype=np.uint64)
        self._nwords = nwords
        # Placement is BIT-granular: a BT may start at any bit offset, so
        # every node bit of every BT is uniformly distributed over the
        # array.  Granularity is load-bearing, not cosmetic: with coarser
        # (word/lane-aligned) placement, the couple of bits per window
        # that hold a mini-tree's depth-1 nodes would be confined to a few
        # fixed in-word offsets and would saturate long before the
        # deep-node bits, silently destroying the shallow levels'
        # discriminating power.  (A SIMD implementation realises the same
        # placement with one shift before the wide OR.)  A BT never
        # straddles the array end.
        self._unit_bits = 1
        self._block_mask = (1 << self.block_bits) - 1
        self._init_placement()
        # Statistics used by the bench harness and the adaptive level
        # logic.  Guarded by a lock: service workers probe one shared
        # filter concurrently, and `+=` on a shared attribute is a
        # read-modify-write that would silently lose increments.
        self._stats_lock = threading.Lock()
        self.fetch_count = 0
        self.insert_count = 0
        #: Bumped on every mutation (insert_bt / bulk_insert_nodes); a
        #: FetchCache records the generation it was filled against and
        #: self-invalidates when it no longer matches, so a cache reused
        #: across batches can never serve stale mini-trees.
        self.generation = 0
        self._ones_dirty = True
        self._ones_cache = 0

    # ------------------------------------------------------------------
    # placement (overridden by BlockedRBF for the cache-blocked layout)
    # ------------------------------------------------------------------
    def _init_placement(self) -> None:
        """Build the hash machinery that maps a hash key to ``k`` window
        start positions.  The flat layout places every window
        independently anywhere in ``[0, bits - block_bits]``."""
        self.num_positions = self.bits - self.block_bits + 1
        # Construction-time only (called from __init__ before any thread
        # can hold a reference); the placement is immutable afterwards.
        self._family = HashFamily(self.k, self.num_positions, self.seed)  # lint: allow[lock-discipline]

    def _positions(self, hash_key: int) -> list[int]:
        """Window start bit positions of one hash key (length ``k``)."""
        return self._family.positions(hash_key)

    def placement_params(self) -> dict:
        """Layout constants the fused kernels fold into their tables."""
        return {
            "layout": self.layout,
            "buckets": self.num_positions,
            "seeds": np.asarray(self._family._seeds_arr, dtype=np.uint64),
        }

    def _positions_array(self, hash_keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_positions`: ``(k, n)`` uint64 array."""
        return self._family.positions_array(hash_keys)

    # ------------------------------------------------------------------
    # scalar path
    # ------------------------------------------------------------------
    def insert_bt(self, hash_key: int, bt: np.ndarray) -> None:
        """OR the BT into the ``k`` windows selected by ``hash_key``."""
        with self._stats_lock:
            self.insert_count += 1
            self.generation += 1
            self._ones_dirty = True
        arr = self._array
        w = self.words_per_block
        for pos in self._positions(hash_key):
            word, shift = divmod(pos, 64)
            if shift == 0:
                arr[word : word + w] |= bt
            else:
                sh = np.uint64(shift)
                co = np.uint64(64 - shift)
                arr[word : word + w] |= bt << sh
                arr[word + 1 : word + 1 + w] |= bt >> co

    def fetch_bt(self, hash_key: int) -> np.ndarray:
        """AND of the ``k`` windows selected by ``hash_key`` (combined BT).

        ``fetch_count`` advances by ``k`` — one per window read — so probe
        counts are comparable with the per-hash probes of the Bloom-based
        baselines.
        """
        with self._stats_lock:
            self.fetch_count += self.k
        sp = current_span()
        if sp is not None:
            sp.add("rbf_fetches", self.k)
        arr = self._array
        w = self.words_per_block
        combined: np.ndarray | None = None
        for pos in self._positions(hash_key):
            word, shift = divmod(pos, 64)
            if shift == 0:
                window = arr[word : word + w]
            else:
                sh = np.uint64(shift)
                co = np.uint64(64 - shift)
                window = (arr[word : word + w] >> sh) | (
                    arr[word + 1 : word + 1 + w] << co
                )
            if combined is None:
                # The aligned path's ``window`` is a *view* of ``_array``;
                # copy before it can escape (or be AND-ed in place below),
                # so no caller can mutate filter state through a fetched
                # BT.  The unaligned path already produced a fresh array.
                combined = window.copy() if shift == 0 else window
            else:
                combined &= window
        if self.block_bits < 64:
            combined[0] &= np.uint64(self._block_mask)
        return combined

    def fetch_bt_many(
        self,
        hash_keys: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
        scratch: "FetchScratch | None" = None,
    ) -> np.ndarray:
        """Combined BTs for an array of hash prefixes, vectorised.

        The batch equivalent of calling :meth:`fetch_bt` per key: all
        ``k`` windows of all keys are resolved with one gather plus a
        shift/OR pair per hash function, and the per-key AND across the
        ``k`` windows happens array-wide.  Returns a
        ``(len(hash_keys), words_per_block)`` array (row ``i`` is
        bit-identical to ``fetch_bt(hash_keys[i])``); ``fetch_count``
        advances by ``k`` per key, as on the scalar path.

        ``out`` lets a caller supply the result buffer; a buffer with
        enough rows is sliced and filled in place (the returned view
        aliases it), anything else falls back to a fresh allocation.
        ``scratch`` additionally recycles the gather/shift intermediates
        across calls (see :class:`FetchScratch`) — the repeated
        per-batch allocations otherwise show up as GC churn in the
        PhaseProfiler at large batch sizes.  The :class:`FetchCache`
        probe path owns one scratch per cache, so concurrent callers
        never share buffers.
        """
        hash_keys = np.asarray(hash_keys, dtype=np.uint64)
        n = hash_keys.size
        w = self.words_per_block
        if n == 0:
            return np.zeros((0, w), dtype=np.uint64)
        with self._stats_lock:
            self.fetch_count += self.k * n
        sp = current_span()
        if sp is not None:
            sp.add("rbf_fetches", self.k * n)
        arr = self._array
        positions = self._positions_array(hash_keys)
        span = np.arange(w + 1, dtype=np.intp)
        if out is not None and out.ndim == 2 and out.shape[0] >= n and (
            out.shape[1] == w and out.dtype == np.uint64
        ):
            combined = out[:n]
        else:
            combined = np.empty((n, w), dtype=np.uint64)
        if scratch is None:
            scratch = FetchScratch()
        idx, win, wnd = scratch.buffers(n, w)
        for i in range(self.k):
            word = (positions[i] >> np.uint64(6)).astype(np.intp)
            shift = positions[i] & np.uint64(63)
            # Gather w+1 words per window; the pad word keeps the last
            # column in bounds for fully-aligned positions.
            np.add(word[:, None], span, out=idx)
            np.take(arr, idx, out=win)
            target = combined if i == 0 else wnd
            np.right_shift(win[:, :w], shift[:, None], out=target)
            # ``64 - shift`` is masked to stay a defined shift; aligned
            # rows (shift == 0) take no bits from the next word.
            co = (np.uint64(64) - shift) & np.uint64(63)
            high = win[:, 1 : w + 1]
            np.left_shift(high, co[:, None], out=high)
            high[shift == 0] = 0
            np.bitwise_or(target, high, out=target)
            if i:
                np.bitwise_and(combined, wnd, out=combined)
        if self.block_bits < 64:
            combined[:, 0] &= np.uint64(self._block_mask)
        return combined

    # ------------------------------------------------------------------
    # vectorised path
    # ------------------------------------------------------------------
    def bulk_insert_nodes(self, hash_keys: np.ndarray, nodes: np.ndarray) -> None:
        """Set one node bit per (hash_key, node) pair, vectorised.

        ``hash_keys`` selects windows (``k`` each); ``nodes`` are 1-based
        BFS node numbers inside the corresponding mini-tree.  This is the
        bulk equivalent of inserting single-bit BTs and is what the
        level-by-level adaptive construction uses: one call per (level,
        hash function) sets the bits for every key via
        ``np.bitwise_or.at``.
        """
        if len(hash_keys) != len(nodes):
            raise ValueError("hash_keys and nodes must have equal length")
        if len(hash_keys) == 0:
            return
        with self._stats_lock:
            self.insert_count += len(hash_keys)
            self.generation += 1
            self._ones_dirty = True
        bits = nodes.astype(np.uint64) - np.uint64(1)
        positions = self._positions_array(hash_keys)
        bitpos = positions * np.uint64(self._unit_bits) + bits[None, :]
        words = bitpos >> np.uint64(6)
        masks = np.uint64(1) << (bitpos & np.uint64(63))
        for i in range(self.k):
            np.bitwise_or.at(self._array, words[i], masks[i])

    # ------------------------------------------------------------------
    # load factor
    # ------------------------------------------------------------------
    def ones(self) -> int:
        """Number of set bits in the array."""
        with self._stats_lock:
            if self._ones_dirty:
                self._ones_cache = int(np.bitwise_count(self._array).sum())
                self._ones_dirty = False
            return self._ones_cache

    @property
    def p1(self) -> float:
        """``P1`` — the proportion of ones; FPR is near-minimal at ~0.5."""
        return self.ones() / self.bits

    def size_in_bits(self) -> int:
        """Occupied memory in bits (the figure used for BPK accounting)."""
        return self.bits

    #: Pull-based gauges for :meth:`Instrumented.telemetry` — the load
    #: factor the adaptive logic targets plus the probe/mutation tallies.
    _TELEMETRY = (
        "p1",
        "bits",
        "k",
        "group_bits",
        "fetch_count",
        "insert_count",
        "generation",
    )

    def reset_counters(self) -> None:
        """Zero the probe statistics (not the bit array or generation)."""
        with self._stats_lock:
            self.fetch_count = 0
            self.insert_count = 0

    def copy(self) -> "RangeBloomFilter":
        """Deep copy, sharing nothing with the original."""
        clone = RangeBloomFilter(
            self.bits,
            self.k,
            self.group_bits,
            self.seed,
            block_bits=self.block_bits,
            layout=self.layout,
        )
        clone._array[:] = self._array
        clone.generation = self.generation
        clone._ones_dirty = True
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RangeBloomFilter(bits={self.bits}, k={self.k}, "
            f"group_bits={self.group_bits}, p1={self.p1:.3f})"
        )
