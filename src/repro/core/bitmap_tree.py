"""Bitmap Tree (BT) codec — the paper's local encoding of mini-trees.

REncoder splits the implicit segment tree over the key domain into
*mini-trees* of ``B`` consecutive levels and encodes each mini-tree as a
bitmap called a Bitmap Tree:

* the mini-tree's nodes are numbered 1, 2, 3, ... in breadth-first order
  (node ``n``'s children are ``2n`` and ``2n + 1``);
* node ``n`` maps to bit ``n - 1`` of the bitmap;
* a mini-tree spanning suffix bits ``s_1 .. s_B`` has ``2^(B+1) - 1`` nodes
  and therefore fits a ``2^(B+1)``-bit bitmap (the last bit is unused).

With ``B = 4`` a BT is 32 bits (the worked example in the paper's Figure 2);
with ``B = 8`` it is 512 bits, the AVX-512 configuration of the paper's C++
implementation.  Here a BT is a small contiguous ``numpy.uint64`` slice, so
ORing or ANDing one into/out of the Range Bloom Filter is a single
vectorised operation — the Python analogue of the paper's single SIMD memory
access.

The worked example from the paper, reproduced by the tests: encoding suffix
``0100`` (with the root) sets nodes 1, 2, 5, 10, 20, i.e. bits
0, 1, 4, 9, 19 — the bitmap ``11001000010000000001...0``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitmapTreeCodec", "node_index", "path_nodes"]


def node_index(suffix: int, depth: int) -> int:
    """BFS node number of the ``depth``-bit suffix within its mini-tree.

    The node at depth ``d`` reached by bits ``s_1 .. s_d`` (``s_1`` most
    significant) is ``2^d + (s_1 .. s_d)``.  Depth 0 is the root, node 1.

    >>> node_index(0b0100, 4)
    20
    >>> node_index(0b0, 1)
    2
    """
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")
    return (1 << depth) | (suffix & ((1 << depth) - 1))


def path_nodes(suffix: int, nbits: int) -> list[int]:
    """All node numbers on the root→leaf path of an ``nbits``-bit suffix.

    Includes the root (node 1).

    >>> path_nodes(0b0100, 4)
    [1, 2, 5, 10, 20]
    """
    return [node_index(suffix >> (nbits - d), d) for d in range(nbits + 1)]


class BitmapTreeCodec:
    """Encode and decode Bitmap Trees for mini-trees of ``group_bits`` levels.

    Parameters
    ----------
    group_bits:
        ``B``, the number of consecutive prefix levels per mini-tree.
        The BT is ``2^(B+1)`` bits, i.e. ``max(1, 2^(B+1) / 64)`` uint64
        words.  Must be between 1 and 9 (a 9-bit group is a 1024-bit BT;
        the paper uses 4 in examples and 8 in the evaluation).
    """

    __slots__ = ("group_bits", "bt_bits", "words")

    def __init__(self, group_bits: int = 8) -> None:
        if not 1 <= group_bits <= 9:
            raise ValueError(
                f"group_bits must be in [1, 9], got {group_bits}"
            )
        self.group_bits = group_bits
        self.bt_bits = 1 << (group_bits + 1)
        self.words = max(1, self.bt_bits // 64)

    # ------------------------------------------------------------------
    # scalar encoding
    # ------------------------------------------------------------------
    def encode_suffix(
        self,
        suffix: int,
        nbits: int | None = None,
        include_root: bool = True,
    ) -> np.ndarray:
        """Encode the root→leaf path of ``suffix`` into a fresh BT.

        ``nbits`` defaults to the full group width.  With
        ``include_root=False`` the root bit (bit 0) is left clear, which the
        adaptive variants use when the group's boundary level is not stored.
        """
        if nbits is None:
            nbits = self.group_bits
        if not 0 <= nbits <= self.group_bits:
            raise ValueError(
                f"suffix width {nbits} outside [0, {self.group_bits}]"
            )
        bt = np.zeros(self.words, dtype=np.uint64)
        start = 0 if include_root else 1
        for depth in range(start, nbits + 1):
            self.set_node(bt, node_index(suffix >> (nbits - depth), depth))
        return bt

    def encode_levels(
        self, suffix: int, nbits: int, depths: "list[int] | range"
    ) -> np.ndarray:
        """Encode only the path nodes at the given ``depths`` (0 = root)."""
        bt = np.zeros(self.words, dtype=np.uint64)
        for depth in depths:
            if not 0 <= depth <= nbits:
                raise ValueError(f"depth {depth} outside path of {nbits} bits")
            self.set_node(bt, node_index(suffix >> (nbits - depth), depth))
        return bt

    # ------------------------------------------------------------------
    # bit accessors
    # ------------------------------------------------------------------
    def set_node(self, bt: np.ndarray, node: int) -> None:
        """Set the bit for BFS node number ``node`` (1-based)."""
        bit = node - 1
        bt[bit >> 6] |= np.uint64(1 << (bit & 63))

    def get_node(self, bt: np.ndarray, node: int) -> bool:
        """Read the bit for BFS node number ``node`` (1-based)."""
        bit = node - 1
        return bool((int(bt[bit >> 6]) >> (bit & 63)) & 1)

    def get_suffix_bit(self, bt: np.ndarray, suffix: int, depth: int) -> bool:
        """Read the bit of the node reached by a ``depth``-bit suffix."""
        return self.get_node(bt, node_index(suffix, depth))

    # ------------------------------------------------------------------
    # decoding / debugging
    # ------------------------------------------------------------------
    def decode_nodes(self, bt: np.ndarray) -> list[int]:
        """All set node numbers, ascending (BFS order)."""
        out = []
        for w, word in enumerate(bt):
            word = int(word)
            while word:
                low = word & -word
                out.append(w * 64 + low.bit_length())  # bit i -> node i + 1
                word ^= low
        return out

    def decode_prefixes(self, bt: np.ndarray) -> list[tuple[int, int]]:
        """Set nodes as ``(suffix_value, depth)`` pairs.

        Inverse of the node numbering: node ``n`` at depth
        ``d = floor(log2 n)`` encodes suffix ``n - 2^d``.
        """
        out = []
        for node in self.decode_nodes(bt):
            depth = node.bit_length() - 1
            out.append((node - (1 << depth), depth))
        return out

    def to_bitstring(self, bt: np.ndarray) -> str:
        """Render the BT as a left-to-right bit string (bit 0 first).

        Matches the presentation in the paper's Figure 2.
        """
        chars = []
        for bit in range(self.bt_bits):
            chars.append("1" if (int(bt[bit >> 6]) >> (bit & 63)) & 1 else "0")
        return "".join(chars)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BitmapTreeCodec(group_bits={self.group_bits})"
