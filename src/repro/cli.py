"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library version, available filters and experiment names.
``figure NAME [NAME...]``
    Regenerate one or more paper artifacts (``fig5``, ``table2``, ... or
    ``all``) and print their tables.  ``--n-keys`` / ``--n-queries``
    control scale.
``shootout``
    Build every range filter at one budget and print the comparison
    table (FPR / probes / throughput on uniform and correlated empty
    queries).
``serve-bench``
    Stand up the concurrent :class:`~repro.service.FilterService` over
    an LSM tree and drive it with an open-loop range-query load for
    ``--duration`` seconds; prints goodput, latency percentiles and the
    degraded/shed accounting.
``metrics-dump``
    Build a small service, run a query mix, and dump its metrics
    registry — every counter, gauge and histogram across the service,
    storage and filter layers — as JSON or Prometheus text.
``trace-query``
    Run one traced range query through the full service stack and print
    the span tree: queue wait, per-SSTable filter probes with verdicts,
    RBF block-fetch counts, cache hits, and any second-level reads.
``lint``
    Run the project lint engine (wall-clock/RNG/one-sided-error/lock
    discipline rules, DESIGN.md §10) over the source tree; exits 1 on
    findings that are neither baselined nor pragma-suppressed.
``demo``
    A 30-second guided tour of the REncoder API.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import __version__
from repro.bench import experiments as exp
from repro.bench.registry import FILTER_NAMES, build_filter
from repro.bench.tables import format_table
from repro.workloads.datasets import generate_keys
from repro.workloads.queries import (
    correlated_range_queries,
    uniform_range_queries,
)

__all__ = ["main"]

FIGURES = {
    "fig3a": lambda cfg: exp.fig3_build_time(cfg),
    "fig3b": lambda cfg: exp.fig3_workload_time(cfg),
    "fig4": lambda cfg: exp.fig4_overall_time(cfg),
    "fig5": lambda cfg: exp.fig5_fpr_range(cfg, 32),
    "fig5b": lambda cfg: exp.fig5_fpr_range(cfg, 64),
    "fig6": lambda cfg: exp.fig6_throughput_range(cfg, 32),
    "fig7": lambda cfg: exp.fig7_point_queries(cfg),
    "fig8": lambda cfg: exp.fig8_point_optimised(cfg),
    "fig9": lambda cfg: exp.fig9_correlated_queries(cfg),
    "fig10": lambda cfg: exp.fig10_real_datasets(cfg),
    "table1": lambda cfg: exp.table1_summary(cfg),
    "table2": lambda cfg: exp.table2_space_cost(cfg),
    "table4": lambda cfg: exp.table4_independence(cfg),
}


def _cmd_info(_args) -> int:
    print(f"repro {__version__} — REncoder (ICDE 2023) reproduction")
    print(f"filters:     {', '.join(FILTER_NAMES)}")
    print(f"experiments: {', '.join(FIGURES)}")
    return 0


def _cmd_figure(args) -> int:
    names = list(args.names)
    if names == ["all"]:
        names = list(FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(FIGURES)} or 'all'", file=sys.stderr)
        return 2
    cfg = exp.ExperimentConfig(n_keys=args.n_keys, n_queries=args.n_queries)
    for name in names:
        start = time.perf_counter()
        _, text = FIGURES[name](cfg)
        print(text)
        print(f"[{name}: {time.perf_counter() - start:.1f}s]\n")
    return 0


def _cmd_shootout(args) -> int:
    keys = generate_keys(args.n_keys, args.dataset, seed=args.seed)
    uniform = uniform_range_queries(keys, args.n_queries, seed=args.seed + 1)
    correlated = correlated_range_queries(
        keys, args.n_queries, seed=args.seed + 2
    )
    sample = uniform[: args.n_queries // 10] + correlated[: args.n_queries // 10]
    rows = []
    for name in FILTER_NAMES:
        if name in ("Bloom", "REncoderPO"):
            continue  # point-only / baseline-only entries
        filt = build_filter(name, keys, args.bpk, sample_queries=sample)
        filt.reset_counters()
        start = time.perf_counter()
        fp_u = sum(filt.query_range(lo, hi) for lo, hi in uniform)
        elapsed = time.perf_counter() - start
        fp_c = sum(filt.query_range(lo, hi) for lo, hi in correlated)
        rows.append(
            {
                "filter": name,
                "bpk": round(filt.size_in_bits() / len(keys), 1),
                "uniform_fpr": fp_u / len(uniform),
                "corr_fpr": fp_c / len(correlated),
                "kq/s": round(len(uniform) / elapsed / 1e3, 1),
            }
        )
    print(format_table(
        rows,
        f"{args.n_keys} {args.dataset} keys @ {args.bpk} bits/key",
    ))
    return 0


def _cmd_report(args) -> int:
    from repro.bench.report import build_report

    text = build_report(args.results_dir, args.output)
    print(f"wrote {args.output} "
          f"({len(text.splitlines())} lines)")
    return 0


def _cmd_serve_bench(args) -> int:
    import json

    from repro.bench.metrics import run_service_load
    from repro.core.rencoder import REncoder
    from repro.service import FilterService
    from repro.storage.env import SimulatedClock, StorageEnv
    from repro.storage.lsm import LSMTree

    env = StorageEnv(clock=SimulatedClock())
    lsm = LSMTree(
        lambda ks: REncoder(ks, bits_per_key=12),
        memtable_capacity=2_000,
        policy="tiering",
        env=env,
    )
    keys = generate_keys(args.n_keys, "uniform", seed=args.seed)
    for k in keys:
        lsm.put(int(k), int(k) & 0xFF)
    lsm.flush()

    n_requests = max(1, int(args.rate * args.duration))
    rng = np.random.default_rng(args.seed + 1)
    ranges = [(int(k), int(k) + 2) for k in rng.choice(keys, n_requests)]
    deadline_ns = (
        int(args.deadline_ms * 1e6) if args.deadline_ms > 0 else None
    )
    with FilterService(
        lsm,
        workers=args.concurrency,
        queue_depth=args.queue_depth,
        shed_policy=args.shed_policy,
        default_deadline_ns=deadline_ns,
    ) as svc:
        run = run_service_load(
            svc, ranges, rate_qps=args.rate, label="serve-bench"
        )
        breaker = svc.breaker.snapshot()
    print(format_table([run.as_row()], (
        f"{args.duration}s @ {args.rate} qps, {args.concurrency} workers, "
        f"queue {args.queue_depth} ({args.shed_policy})"
    )))
    print(json.dumps({
        "goodput_qps": round(run.goodput_qps, 1),
        "completed": run.completed,
        "degraded_rate": run.degraded_rate,
        "shed": run.shed,
        "rejected": run.rejected,
        "p99_ms": run.p99_ms,
        "breaker": breaker,
    }))
    return 0


def _build_small_service_stack(n_keys: int, seed: int):
    """Shared setup for ``metrics-dump`` / ``trace-query``: a populated
    LSM tree on a simulated-clock storage env, plus its key set."""
    from repro.core.rencoder import REncoder
    from repro.storage.env import SimulatedClock, StorageEnv
    from repro.storage.lsm import LSMTree

    env = StorageEnv(clock=SimulatedClock())
    lsm = LSMTree(
        lambda ks: REncoder(ks, bits_per_key=12),
        memtable_capacity=2_000,
        policy="tiering",
        env=env,
    )
    keys = generate_keys(n_keys, "uniform", seed=seed)
    for k in keys:
        lsm.put(int(k), int(k) & 0xFF)
    lsm.flush()
    return env, lsm, keys


def _cmd_metrics_dump(args) -> int:
    import json

    from repro.service import FilterService
    from repro.telemetry.registry import MetricsRegistry

    env, lsm, keys = _build_small_service_stack(args.n_keys, args.seed)
    registry = MetricsRegistry()
    rng = np.random.default_rng(args.seed + 1)
    with FilterService(lsm, workers=2, registry=registry) as svc:
        for table in (t for level in lsm.levels for t in level):
            if table.filter is not None:
                table.filter.register_metrics(
                    registry, component="filter", table=str(table.table_id)
                )
        for k in rng.choice(keys, args.queries):
            svc.query_range(int(k), int(k) + 2)
        for k in rng.integers(0, 1 << 32, max(1, args.queries // 4)):
            svc.query_point(int(k))
        if args.format == "prom":
            print(registry.to_prometheus())
        else:
            print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    return 0


def _cmd_trace_query(args) -> int:
    import json

    from repro.service import FilterService
    from repro.telemetry.tracing import format_tree, get_tracer

    env, lsm, keys = _build_small_service_stack(args.n_keys, args.seed)
    lo = int(keys[len(keys) // 2]) if args.lo is None else args.lo
    hi = lo + args.width if args.hi is None else args.hi
    tracer = get_tracer().enable(clock=env.clock)
    try:
        with FilterService(lsm, workers=2) as svc:
            resp = svc.query_range(lo, hi)
    finally:
        tracer.disable()
    if resp.trace is None:
        print("no trace captured (tracing disabled?)", file=sys.stderr)
        return 1
    print(format_tree(resp.trace))
    summary = {
        "positive": resp.positive,
        "degraded": resp.degraded,
        "reason": resp.reason,
        "rbf_fetches": resp.trace.total("rbf_fetches"),
        "filter_probes": resp.trace.total("filter_probes"),
        "cache_hits": resp.trace.total("cache_hits"),
        "io_reads": resp.trace.total("io_reads"),
    }
    print(json.dumps(summary))
    if args.json:
        print(json.dumps(resp.trace.to_dict(), indent=2))
    return 0


def _cmd_cluster_demo(args) -> int:
    """Build a small sharded cluster, hurt it, and show it still answers."""
    import json
    import random

    from repro.cluster import FilterCluster
    from repro.core.rencoder import REncoder

    cluster = FilterCluster(
        n_shards=args.shards,
        replicas_per_shard=args.replicas,
        filter_factory=lambda ks: REncoder(ks, bits_per_key=12),
        seed=args.seed,
        segment_bits=5,
        memtable_capacity=2_000,
        workers=2,
    )
    cluster.start()
    rng = random.Random(args.seed)
    keys = sorted({rng.randrange((1 << 64) - 1) for _ in range(args.n_keys)})
    cluster.load(keys)
    cluster.flush()
    try:
        # One replica crashed, one partitioned: every shard still owes a
        # correct (one-sided) answer through failover.
        cluster.crash_replica(0, 0)
        if args.shards > 1 and args.replicas > 1:
            cluster.partition_replica(1, 1)
        probes = [(k, k) for k in rng.sample(keys, args.queries)]
        resp = cluster.query_range_many(probes)
        misses = sum(1 for p in resp.positives if not p)
        if args.grow:
            info = cluster.add_shard()
            print(
                f"grew to shard {info['shard']}: moved "
                f"{info['keys_moved']} keys across "
                f"{len(info['segments'])} segments (epoch {info['epoch']})"
            )
            resp2 = cluster.query_range_many(probes)
            misses += sum(1 for p in resp2.positives if not p)
        health = cluster.health()
        print(json.dumps({
            "false_negatives": misses,
            "degraded": resp.degraded,
            "epoch": health["epoch"],
            "replicas": {
                name: snap["health"]["state"]
                for name, snap in health["replicas"].items()
            },
            "counters": health["counters"],
            "hints": health["hints"],
        }, indent=2, sort_keys=True))
    finally:
        cluster.stop()
    return 1 if misses else 0


def _cmd_durability_demo(args) -> int:
    """Hurt a durable cluster's *storage* and show it heal itself.

    The cluster-demo breaks topology (crashes, partitions); this one
    breaks bytes: it tears a WAL append, flips a bit in a cold SSTable
    blob and in a checkpoint, crash-restarts the victim through the
    checkpoint + WAL-tail recovery path, then lets the scrubber and
    anti-entropy repair everything — and proves the one-sided contract
    held throughout (every stored key still answers positive).
    """
    import json
    import random

    from repro.cluster import FilterCluster
    from repro.core.rencoder import REncoder

    cluster = FilterCluster(
        n_shards=args.shards,
        replicas_per_shard=args.replicas,
        filter_factory=lambda ks: REncoder(ks, bits_per_key=12),
        seed=args.seed,
        segment_bits=5,
        memtable_capacity=1_000,
        workers=2,
        durability=True,
    )
    cluster.start()
    rng = random.Random(args.seed)
    keys = sorted({rng.randrange((1 << 64) - 1) for _ in range(args.n_keys)})
    cluster.load(keys)
    cluster.flush()
    cluster.checkpoint_all()
    try:
        # Storage injuries on replica 1 of shard 0 (replica 0 is the
        # healthy sibling repairs will be sourced from).
        victim = cluster.replica(0, 1)
        rotted = []
        for record in list(victim.lsm.data_records().values())[:1]:
            victim.env.rot_blob(record.blob_name)
            rotted.append(record.blob_name)
        ckpt_name = victim.lsm.checkpoints.latest_name()
        if ckpt_name is not None:
            victim.env.rot_blob(ckpt_name)
            rotted.append(ckpt_name)
        victim.injector.arm_torn_append(1)  # next group commit tears once
        cluster.put(keys[0] ^ 0x5EED, 1)  # absorbed by the WAL retry
        keys.append(keys[0] ^ 0x5EED)
        keys.sort()
        cluster.crash_replica(0, 1)
        restore = cluster.restart_replica(0, 1)

        scrub = cluster.scrub_all(repair=True)
        rounds = []
        for _ in range(3):
            report = cluster.anti_entropy()
            rounds.append(report)
            if report["converged"] and not cluster.quarantine_backlog():
                break
        clean = cluster.scrub_all(repair=False)

        misses = 0
        for i in range(0, len(keys), 100):
            batch = [(k, k) for k in keys[i : i + 100]]
            resp = cluster.query_range_many(batch)
            misses += sum(1 for p in resp.positives if not p)
        print(json.dumps({
            "false_negatives": misses,
            "blobs_rotted": rotted,
            "restore": {
                k: restore.get(k)
                for k in ("wal_records_replayed", "wal_torn_segments",
                          "checkpoint_fallbacks", "quarantined")
            },
            "scrub_rot_detected": sum(
                r.get("rot_detected", 0) for r in scrub.values()
            ),
            "scrub_repaired": sum(
                r.get("repaired_local", 0) for r in scrub.values()
            ),
            "scrub_clean_after": all(
                r.get("rot_detected", 0) == 0 for r in clean.values()
            ),
            "anti_entropy_rounds": len(rounds),
            "quarantine_refilled": sum(
                r["quarantine_refilled"] for r in rounds
            ),
            "pairs_copied": sum(r["pairs_copied"] for r in rounds),
            "quarantine_backlog": cluster.quarantine_backlog(),
        }, indent=2, sort_keys=True))
    finally:
        cluster.stop()
    return 1 if misses else 0


def _observed_cluster(seed: int, n_keys: int, shards: int, replicas: int):
    """A durable cluster with tracing, SLOs and federation live, plus a
    deterministic chaos scenario already driven through it.

    Shared by ``trace-show`` and ``cluster-top``: healthy traffic, a
    crash + partition window (failover/hedge material), hint replay on
    restart, and one anti-entropy round — so the trace store holds
    query, hint-replay and repair trees and every gauge has moved.
    """
    import random

    from repro.cluster import FilterCluster
    from repro.core.rencoder import REncoder
    from repro.telemetry.context import TraceStore
    from repro.telemetry.tracing import get_tracer

    store = TraceStore(cap=256, seed=seed, sample_rate=0.05)
    cluster = FilterCluster(
        n_shards=shards,
        replicas_per_shard=replicas,
        filter_factory=lambda ks: REncoder(ks, bits_per_key=12),
        seed=seed,
        segment_bits=5,
        memtable_capacity=2_000,
        workers=2,
        durability=True,
        trace_store=store,
    )
    cluster.start()
    get_tracer().enable(cluster.clock)
    cluster.enable_slo()
    rng = random.Random(seed)
    keys = sorted({rng.getrandbits(64) for _ in range(n_keys)})
    cluster.load(keys)
    cluster.flush()

    def probe(n: int) -> None:
        for k in rng.sample(keys, n):
            resp = cluster.query_range(k, k + 64)
            cluster.record_truth(True, resp.positive)

    probe(40)  # healthy control window
    cluster.crash_replica(0, 0)
    if replicas > 1:
        cluster.slow_replica(0, 1, 0.5, 30_000_000)
    if shards > 1:
        cluster.partition_replica(1, replicas - 1)
    probe(40)  # fault window: failovers, hedges, degraded merges
    cluster.slow_replica(0, 1, 0.0)
    for k in rng.sample(keys, 30):
        cluster.put(k ^ 0x5EED)  # writes the downed replicas must miss
    cluster.restart_replica(0, 0)  # hint replay (traced, WAL appends)
    if shards > 1:
        cluster.heal_replica(1, replicas - 1)
    cluster.anti_entropy()
    probe(20)  # recovered window
    return cluster, store


def _cmd_trace_show(args) -> int:
    """Render a tail-sampled cross-replica trace tree by id."""
    import json as _json

    from repro.telemetry.tracing import format_tree

    cluster, store = _observed_cluster(
        args.seed, args.n_keys, args.shards, args.replicas
    )
    try:
        records = store.records()
        if args.trace_id is None:
            print(f"kept traces ({len(records)}):")
            for rec in records:
                root = rec["root"]
                why = "interesting" if rec["interesting"] else "sampled"
                print(
                    f"  {rec['trace_id']:016x}  kind={rec['kind']:<11} "
                    f"{why:<11} spans={_count_spans(root)}"
                )
            interesting = [r for r in records if r["interesting"]]
            if interesting:
                newest = interesting[-1]
                print(f"\nnewest interesting trace "
                      f"{newest['trace_id']:016x}:")
                print(format_tree(newest["root"]))
            print(_json.dumps(store.stats()))
            return 0
        rendered = store.format(args.trace_id)
        print(rendered)
        return 1 if rendered.startswith("trace ") and "not found" in rendered else 0
    finally:
        cluster.stop()


def _count_spans(span) -> int:
    return 1 + sum(_count_spans(c) for c in span.children)


def _cmd_cluster_top(args) -> int:
    """Live per-shard dashboard frames over the federated registry."""
    import json as _json

    from repro.telemetry.federation import ClusterTop

    cluster, store = _observed_cluster(
        args.seed, args.n_keys, args.shards, args.replicas
    )
    try:
        top = ClusterTop(cluster)
        top.frame()  # prime the rate baselines
        # Advance through distinct traffic windows so qps deltas and
        # state labels change frame to frame.
        import random

        rng = random.Random(args.seed ^ 0x70B)
        for _ in range(args.frames):
            for _ in range(args.queries_per_frame):
                lo = rng.getrandbits(64)
                cluster.query_range(lo, lo + 64)
            print(top.frame())
            print()
        if args.slo_report is not None and cluster.slo is not None:
            with open(args.slo_report, "w") as fh:
                _json.dump(cluster.slo.report(), fh, indent=2)
            print(f"wrote {args.slo_report}")
        return 0
    finally:
        cluster.stop()


#: Default lint targets, relative to the repo root: the library itself
#: plus everything that feeds CI artifacts.
LINT_PATHS = ("src/repro", "benchmarks", "examples")


def _cmd_lint(args) -> int:
    import json
    from pathlib import Path

    from repro.lint import Baseline, LintEngine, make_default_rules

    engine = LintEngine(
        make_default_rules(),
        root=args.root,
        baseline=Baseline.load(args.baseline),
    )
    paths = args.paths or [
        p for p in LINT_PATHS if (engine.root / p).exists()
    ]
    findings = engine.run(paths)

    analyzer = None
    if args.interproc or args.graph:
        from repro.lint import (
            InterprocAnalyzer,
            build_call_graph,
            load_runtime_report,
        )

        graph = build_call_graph(args.root)
        analyzer = InterprocAnalyzer(
            graph,
            runtime_report=load_runtime_report(
                Path(args.root) / "SANITIZER_REPORT.json"
            ),
        )
    if args.graph:
        root = Path(args.root)
        cg = root / "CALLGRAPH.json"
        lg = root / "LOCKGRAPH.json"
        cg_dict = analyzer.graph.to_dict()
        lg_dict = analyzer.lock_graph_dict()
        cg.write_text(json.dumps(cg_dict, indent=2) + "\n")
        lg.write_text(json.dumps(lg_dict, indent=2) + "\n")
        print(
            f"wrote {cg} ({cg_dict['functions']} functions, "
            f"{cg_dict['edges']} call edges) and {lg} "
            f"({len(lg_dict['nodes'])} locks, {len(lg_dict['edges'])} "
            f"edges, {len(lg_dict['cycles'])} cycle(s))"
        )
        if not args.interproc and not args.update_baseline:
            return 1 if lg_dict["cycles"] else 0
    if args.interproc:
        findings = sorted(
            findings + analyzer.run(),
            key=lambda f: (f.path, f.line, f.col, f.rule),
        )

    if args.update_baseline:
        target = Baseline.from_findings(findings).save(args.baseline)
        print(f"wrote {target} ({len(findings)} findings baselined)")
        return 0
    new, baselined = engine.baseline.split(findings)
    # The ratchet only engages on the full (interprocedural) run: a
    # partial run can't tell a fixed finding from an unanalyzed one.
    stale = engine.baseline.stale(findings) if args.interproc else []
    if args.format == "json":
        print(json.dumps(
            {
                "new": [f.as_dict() for f in new],
                "baselined": [f.as_dict() for f in baselined],
                "stale_baseline": [
                    {"rule": r, "path": p, "message": m, "count": c}
                    for (r, p, m), c in stale
                ],
                "suppressed": len(engine.suppressed),
                "parse_errors": engine.errors,
            },
            indent=2,
        ))
    else:
        for f in new:
            print(f.format())
        for (rule, fpath, message), count in stale:
            print(
                f"{fpath}: stale baseline entry [{rule}] x{count}: "
                f"{message!r} no longer matches — remove it "
                "(the baseline only shrinks)"
            )
        for path, err in engine.errors:
            print(f"{path}: parse error: {err}", file=sys.stderr)
        print(
            f"lint: {len(new)} finding(s), {len(baselined)} baselined, "
            f"{len(stale)} stale baseline entr(y/ies), "
            f"{len(engine.suppressed)} pragma-suppressed"
        )
    return 1 if new or stale or engine.errors else 0


def _cmd_demo(_args) -> int:
    from repro import REncoder

    rng = np.random.default_rng(0)
    keys = np.unique(rng.integers(0, 1 << 64, 10_000, dtype=np.uint64))
    filt = REncoder(keys, bits_per_key=18)
    k = int(keys[42])
    print(f"built {filt}")
    print(f"query_range({k}-5, {k}+5) -> "
          f"{filt.query_range(k - 5, k + 5)}  (contains a stored key)")
    empty_lo = 12345
    print(f"query_range({empty_lo}, {empty_lo + 31}) -> "
          f"{filt.query_range(empty_lo, empty_lo + 31)}  (empty range)")
    print("see examples/ for the LSM / B+tree / R-tree integrations")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="REncoder (ICDE 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="versions, filters, experiments").set_defaults(
        func=_cmd_info
    )

    fig = sub.add_parser("figure", help="regenerate paper tables/figures")
    fig.add_argument("names", nargs="+",
                     help=f"one of {', '.join(FIGURES)} or 'all'")
    fig.add_argument("--n-keys", type=int, default=10_000)
    fig.add_argument("--n-queries", type=int, default=1_000)
    fig.set_defaults(func=_cmd_figure)

    shoot = sub.add_parser("shootout", help="compare all filters")
    shoot.add_argument("--n-keys", type=int, default=10_000)
    shoot.add_argument("--n-queries", type=int, default=1_000)
    shoot.add_argument("--bpk", type=float, default=18.0)
    shoot.add_argument("--dataset", default="uniform",
                       choices=("uniform", "osmc", "amzn", "face", "wiki"))
    shoot.add_argument("--seed", type=int, default=42)
    shoot.set_defaults(func=_cmd_shootout)

    report = sub.add_parser(
        "report", help="stitch saved bench results into REPORT.md"
    )
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--output", default="REPORT.md")
    report.set_defaults(func=_cmd_report)

    serve = sub.add_parser(
        "serve-bench",
        help="drive the concurrent filter service with an open-loop load",
    )
    serve.add_argument("--duration", type=float, default=2.0,
                       help="seconds of offered load (default 2.0)")
    serve.add_argument("--concurrency", type=int, default=4,
                       help="service worker threads (default 4)")
    serve.add_argument("--shed-policy", default="reject-new",
                       choices=("reject-new", "drop-oldest"))
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admission queue bound, 0 = unbounded")
    serve.add_argument("--rate", type=float, default=2_000.0,
                       help="offered load in queries/second (default 2000)")
    serve.add_argument("--deadline-ms", type=float, default=50.0,
                       help="per-request budget in simulated ms, 0 = none")
    serve.add_argument("--n-keys", type=int, default=20_000)
    serve.add_argument("--seed", type=int, default=42)
    serve.set_defaults(func=_cmd_serve_bench)

    clus = sub.add_parser(
        "cluster-demo",
        help="sharded cluster under a crash + partition, with failover",
    )
    clus.add_argument("--shards", type=int, default=3)
    clus.add_argument("--replicas", type=int, default=2)
    clus.add_argument("--n-keys", type=int, default=5_000)
    clus.add_argument("--queries", type=int, default=200,
                      help="stored-key probes to route (default 200)")
    clus.add_argument("--grow", action="store_true",
                      help="also add a shard live and re-probe")
    clus.add_argument("--seed", type=int, default=42)
    clus.set_defaults(func=_cmd_cluster_demo)

    dura = sub.add_parser(
        "durability-demo",
        help="rot blobs + tear the WAL, then recover, scrub and repair",
    )
    dura.add_argument("--shards", type=int, default=2)
    dura.add_argument("--replicas", type=int, default=2)
    dura.add_argument("--n-keys", type=int, default=3_000)
    dura.add_argument("--seed", type=int, default=42)
    dura.set_defaults(func=_cmd_durability_demo)

    mdump = sub.add_parser(
        "metrics-dump",
        help="run a query mix and dump the metrics registry",
    )
    mdump.add_argument("--format", default="json", choices=("json", "prom"),
                       help="output format (default json)")
    mdump.add_argument("--n-keys", type=int, default=5_000)
    mdump.add_argument("--queries", type=int, default=200,
                       help="range queries to run (default 200)")
    mdump.add_argument("--seed", type=int, default=42)
    mdump.set_defaults(func=_cmd_metrics_dump)

    trace = sub.add_parser(
        "trace-query",
        help="print the span tree of one traced range query",
    )
    trace.add_argument("--lo", type=int, default=None,
                       help="range lower bound (default: a stored key)")
    trace.add_argument("--hi", type=int, default=None,
                       help="range upper bound (default: lo + width)")
    trace.add_argument("--width", type=int, default=4,
                       help="range width when --hi is omitted (default 4)")
    trace.add_argument("--json", action="store_true",
                       help="also print the trace as JSON")
    trace.add_argument("--n-keys", type=int, default=5_000)
    trace.add_argument("--seed", type=int, default=42)
    trace.set_defaults(func=_cmd_trace_query)

    tshow = sub.add_parser(
        "trace-show",
        help="render a tail-sampled cross-replica trace tree",
    )
    tshow.add_argument("trace_id", nargs="?", default=None,
                       help="16-hex trace id; omitted = list kept traces "
                            "and render the newest interesting one")
    tshow.add_argument("--shards", type=int, default=2)
    tshow.add_argument("--replicas", type=int, default=2)
    tshow.add_argument("--n-keys", type=int, default=2_000)
    tshow.add_argument("--seed", type=int, default=42)
    tshow.set_defaults(func=_cmd_trace_show)

    ctop = sub.add_parser(
        "cluster-top",
        help="per-shard qps/p99/degraded/WAL-lag dashboard frames",
    )
    ctop.add_argument("--frames", type=int, default=3,
                      help="dashboard frames to render (default 3)")
    ctop.add_argument("--queries-per-frame", type=int, default=50)
    ctop.add_argument("--shards", type=int, default=2)
    ctop.add_argument("--replicas", type=int, default=2)
    ctop.add_argument("--n-keys", type=int, default=2_000)
    ctop.add_argument("--seed", type=int, default=42)
    ctop.add_argument("--slo-report", default=None,
                      help="also write the SLO engine report JSON here")
    ctop.set_defaults(func=_cmd_cluster_top)

    lint = sub.add_parser(
        "lint",
        help="run the project lint engine (DESIGN.md §10)",
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help=f"files/dirs to lint (default: {', '.join(LINT_PATHS)})")
    lint.add_argument("--format", default="text", choices=("text", "json"))
    lint.add_argument("--baseline", default="lint-baseline.json",
                      help="grandfathered-findings file (default "
                           "lint-baseline.json)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline from the current findings")
    lint.add_argument("--interproc", action="store_true",
                      help="run the whole-program passes (call-graph "
                           "one-sided taint, deadline propagation, "
                           "lock-order union, dead code) and enforce the "
                           "baseline ratchet (DESIGN.md §15)")
    lint.add_argument("--graph", action="store_true",
                      help="dump CALLGRAPH.json + LOCKGRAPH.json at the "
                           "root (exit 1 on lock-graph cycles when used "
                           "alone)")
    lint.add_argument("--root", default=".",
                      help="repo root paths are resolved against")
    lint.set_defaults(func=_cmd_lint)

    sub.add_parser("demo", help="30-second API tour").set_defaults(
        func=_cmd_demo
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
