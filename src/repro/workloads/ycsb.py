"""YCSB-style mixed workloads for the storage substrates.

The paper's filter experiments use pure all-empty query streams; real
deployments mix inserts, point reads and scans.  This module generates
YCSB-flavoured operation streams so the LSM / B+tree benches can measure
filter benefit under realistic churn:

=========  ===============================================
workload   mix (following the YCSB core-workload letters)
=========  ===============================================
``A``      50% point reads / 50% updates
``B``      95% point reads / 5% updates
``C``      100% point reads
``D``      95% reads of recently inserted keys / 5% inserts
``E``      95% short scans / 5% inserts
``F``      50% reads / 50% read-modify-write
=========  ===============================================

Reads draw keys with a zipfian-ish skew over the hot set; a configurable
fraction of reads targets *missing* keys — the regime where filters pay.
Each operation is a tuple: ``("get", key)``, ``("put", key, value)``,
``("scan", lo, hi)`` or ``("rmw", key)``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["YCSB_MIXES", "ycsb_operations", "run_ycsb"]

YCSB_MIXES: dict[str, dict[str, float]] = {
    "A": {"get": 0.5, "put": 0.5},
    "B": {"get": 0.95, "put": 0.05},
    "C": {"get": 1.0},
    "D": {"get": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"get": 0.5, "rmw": 0.5},
}


def _zipf_index(rng: np.random.Generator, n: int, theta: float) -> int:
    """Cheap zipfian-ish rank sampler over [0, n)."""
    u = rng.random()
    rank = int(n * (u ** (1.0 / (1.0 - theta)))) if theta < 1.0 else 0
    return min(n - 1, rank)


def ycsb_operations(
    workload: str,
    keys: np.ndarray,
    n_ops: int,
    *,
    key_bits: int = 64,
    missing_fraction: float = 0.5,
    scan_size: int = 32,
    theta: float = 0.6,
    seed: int = 0,
) -> Iterator[tuple]:
    """Generate ``n_ops`` operations for the named workload letter."""
    if workload not in YCSB_MIXES:
        raise ValueError(
            f"unknown workload {workload!r}; choose from {sorted(YCSB_MIXES)}"
        )
    if not 0.0 <= missing_fraction <= 1.0:
        raise ValueError("missing_fraction must be in [0, 1]")
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.size == 0:
        raise ValueError("need a non-empty key set")
    mix = YCSB_MIXES[workload]
    ops = list(mix.keys())
    probs = np.array([mix[o] for o in ops])
    rng = np.random.default_rng(seed)
    top = (1 << key_bits) - 1
    next_insert = int(keys[-1]) + 1

    for i in range(n_ops):
        op = ops[int(rng.choice(len(ops), p=probs))]
        if op in ("get", "rmw"):
            if rng.random() < missing_fraction:
                key = int(rng.integers(0, top, dtype=np.uint64))
            else:
                key = int(keys[_zipf_index(rng, len(keys), theta)])
            yield (op, key)
        elif op == "put":
            key = int(keys[_zipf_index(rng, len(keys), theta)])
            yield ("put", key, i)
        elif op == "insert":
            next_insert += int(rng.integers(1, 1 << 16))
            yield ("put", min(next_insert, top), i)
        elif op == "scan":
            if rng.random() < missing_fraction:
                lo = int(rng.integers(0, top, dtype=np.uint64))
            else:
                lo = int(keys[_zipf_index(rng, len(keys), theta)])
            hi = min(lo + scan_size - 1, top)
            yield ("scan", lo, hi)


def run_ycsb(store, operations) -> dict[str, int]:
    """Drive a store (LSMTree / BPlusTree-like) with an operation stream.

    The store needs ``get(key)``, ``put(key, value)`` and
    ``range_query(lo, hi)``.  Returns operation counts.
    """
    counts = {"get": 0, "put": 0, "scan": 0, "rmw": 0, "found": 0}
    if hasattr(store, "insert"):
        put = store.insert
    else:
        put = store.put
    for op in operations:
        if op[0] == "get":
            counts["get"] += 1
            counts["found"] += bool(store.get(op[1])[0])
        elif op[0] == "put":
            counts["put"] += 1
            put(op[1], op[2])
        elif op[0] == "scan":
            counts["scan"] += 1
            counts["found"] += bool(store.range_query(op[1], op[2]))
        elif op[0] == "rmw":
            counts["rmw"] += 1
            found, value = store.get(op[1])
            put(op[1], (value or 0) if found else 0)
    return counts
