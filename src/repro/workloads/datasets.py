"""Key-set generators: uniform synthetic plus SOSD-like stand-ins.

The paper's real datasets are SOSD's amzn / face / osmc / wiki, ordered by
skewness wiki > face > amzn > osmc.  The originals are not redistributable
here, so each gets a statistical stand-in that reproduces the property the
experiment probes — how clustered the keys are, i.e. the LCP structure the
adaptive level selection reacts to (DESIGN.md records this substitution):

* ``osmc`` — uniformly sampled OpenStreetMap cells → uniform draw over the
  full 64-bit domain (least skewed);
* ``amzn`` — book-popularity data → cumulative heavy-tailed (lognormal)
  gaps: mildly clustered;
* ``face`` — Facebook user ids → ids allocated in dense blocks: strongly
  clustered cluster structure;
* ``wiki`` — edit timestamps → bursty arrival process confined to a narrow
  span of the domain (most skewed).

:func:`dataset_skew` quantifies the ordering (mean adjacent-LCP); tests
assert ``wiki > face > amzn > osmc``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DATASET_NAMES", "generate_keys", "split_keys", "dataset_skew"]

DATASET_NAMES = ("uniform", "osmc", "amzn", "face", "wiki")


def _uniform(rng: np.random.Generator, n: int, top: int) -> np.ndarray:
    return rng.integers(0, top, n * 2, dtype=np.uint64)


def _amzn(rng: np.random.Generator, n: int, top: int) -> np.ndarray:
    # Heavy-tailed gaps; scaled so the walk spans most of the domain.
    gaps = rng.lognormal(mean=0.0, sigma=2.5, size=n * 2)
    walk = np.cumsum(gaps)
    scaled = walk / walk[-1] * (top * 0.9)
    return scaled.astype(np.uint64)


def _face(rng: np.random.Generator, n: int, top: int) -> np.ndarray:
    # Ids allocated densely inside a modest number of blocks.
    n_clusters = max(4, n // 512)
    centers = rng.integers(0, top, n_clusters, dtype=np.uint64)
    which = rng.integers(0, n_clusters, n * 2)
    offsets = rng.integers(0, 1 << 24, n * 2, dtype=np.uint64)
    return centers[which] + offsets


def _wiki(rng: np.random.Generator, n: int, top: int) -> np.ndarray:
    # Bursty timestamps in a narrow slice of the domain: long quiet gaps,
    # then bursts of near-consecutive values.
    keys = []
    t = int(top * 0.4)
    while len(keys) < n * 2:
        t += int(rng.exponential(1 << 22)) + 1
        burst = int(rng.integers(1, 50))
        for j in range(burst):
            keys.append(t + j * int(rng.integers(1, 4)))
    return np.array(keys[: n * 2], dtype=np.uint64)


_GENERATORS = {
    "uniform": _uniform,
    "osmc": _uniform,
    "amzn": _amzn,
    "face": _face,
    "wiki": _wiki,
}


def generate_keys(
    n: int,
    distribution: str = "uniform",
    *,
    key_bits: int = 64,
    seed: int = 0,
) -> np.ndarray:
    """``n`` sorted unique keys from the named distribution."""
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if distribution not in _GENERATORS:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"choose from {DATASET_NAMES}"
        )
    top = (1 << key_bits) - 1
    rng = np.random.default_rng(seed)
    raw = _GENERATORS[distribution](rng, n, top)
    keys = np.unique(np.minimum(raw, np.uint64(top)))
    while len(keys) < n:
        extra = _GENERATORS[distribution](rng, n, top)
        keys = np.unique(
            np.concatenate([keys, np.minimum(extra, np.uint64(top))])
        )
    if len(keys) > n:
        # Subsample uniformly; taking a sorted prefix would silently skew
        # every dataset toward the bottom of the domain.
        keys = np.sort(rng.choice(keys, n, replace=False))
    return keys


def split_keys(
    keys: np.ndarray, n_holdout: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Split into (stored, held-out) sets for the "real queries" workload.

    The paper samples 10M keys to store and uses 1M of the *remaining*
    keys as range-query left bounds; the held-out part plays that role.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if not 0 < n_holdout < len(keys):
        raise ValueError(
            f"n_holdout must be in (0, {len(keys)}), got {n_holdout}"
        )
    rng = np.random.default_rng(seed)
    idx = rng.permutation(len(keys))
    holdout = np.sort(keys[idx[:n_holdout]])
    stored = np.sort(keys[idx[n_holdout:]])
    return stored, holdout


def dataset_skew(keys: np.ndarray, key_bits: int = 64) -> float:
    """Mean adjacent-pair LCP — the clustering signal level selection sees."""
    keys = np.unique(np.asarray(keys, dtype=np.uint64))
    if len(keys) < 2:
        return 0.0
    diffs = keys[1:] ^ keys[:-1]
    lcp = key_bits - np.ceil(np.log2(diffs.astype(np.float64) + 1))
    return float(lcp.mean())
