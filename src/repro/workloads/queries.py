"""Query workload generators (Section V-A).

All generators return inclusive ``(lo, hi)`` pairs.  The paper evaluates
filters on *empty* queries only ("a range filter is best evaluated by
empty queries"), so each generator takes the key set and rejects queries
containing a key; :func:`is_empty_range` is the shared ground-truth
predicate (binary search over the sorted keys).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_empty_range",
    "uniform_range_queries",
    "correlated_range_queries",
    "left_bounded_range_queries",
    "point_queries",
]


def is_empty_range(keys: np.ndarray, lo: int, hi: int) -> bool:
    """True iff no key lies in ``[lo, hi]`` (keys must be sorted)."""
    i = int(np.searchsorted(keys, np.uint64(lo)))
    return not (i < len(keys) and int(keys[i]) <= hi)


def _sizes(
    rng: np.random.Generator, n: int, min_size: int, max_size: int
) -> np.ndarray:
    if not 1 <= min_size <= max_size:
        raise ValueError(
            f"need 1 <= min_size <= max_size, got [{min_size}, {max_size}]"
        )
    return rng.integers(min_size, max_size + 1, n)


def uniform_range_queries(
    keys: np.ndarray,
    n: int,
    *,
    min_size: int = 2,
    max_size: int = 32,
    key_bits: int = 64,
    seed: int = 0,
    ensure_empty: bool = True,
    max_attempts: int = 50,
) -> list[tuple[int, int]]:
    """The paper's ``2∼32`` / ``2∼64`` workloads: uniform left bounds,
    uniformly drawn range sizes."""
    keys = np.asarray(keys, dtype=np.uint64)
    top = (1 << key_bits) - 1
    rng = np.random.default_rng(seed)
    out: list[tuple[int, int]] = []
    for _ in range(max_attempts):
        need = n - len(out)
        if need <= 0:
            break
        los = rng.integers(0, top, need, dtype=np.uint64)
        sizes = _sizes(rng, need, min_size, max_size)
        for lo_u, size in zip(los, sizes):
            lo = int(lo_u)
            hi = min(lo + int(size) - 1, top)
            if ensure_empty and not is_empty_range(keys, lo, hi):
                continue
            out.append((lo, hi))
    if len(out) < n:
        raise RuntimeError(
            f"could not generate {n} empty queries (got {len(out)}); "
            "the key set may be too dense"
        )
    return out[:n]


def correlated_range_queries(
    keys: np.ndarray,
    n: int,
    *,
    offset: int = 32,
    min_size: int = 2,
    max_size: int = 32,
    key_bits: int = 64,
    seed: int = 0,
    ensure_empty: bool = True,
) -> list[tuple[int, int]]:
    """The correlated workload: left bound = a stored key + ``offset``.

    "We first randomly select keys from datasets, then we increment the
    keys by 32 and set them as left boundaries"; every queried range then
    sits right next to a stored key.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.size == 0:
        raise ValueError("correlated queries need a non-empty key set")
    top = (1 << key_bits) - 1
    rng = np.random.default_rng(seed)
    out: list[tuple[int, int]] = []
    attempts = 0
    while len(out) < n and attempts < 50 * n:
        attempts += 1
        key = int(keys[rng.integers(0, len(keys))])
        lo = key + offset
        if lo > top:
            continue
        size = int(_sizes(rng, 1, min_size, max_size)[0])
        hi = min(lo + size - 1, top)
        if ensure_empty and not is_empty_range(keys, lo, hi):
            continue
        out.append((lo, hi))
    if len(out) < n:
        raise RuntimeError(
            f"could not generate {n} empty correlated queries (got {len(out)})"
        )
    return out


def left_bounded_range_queries(
    keys: np.ndarray,
    left_bounds: np.ndarray,
    n: int,
    *,
    min_size: int = 2,
    max_size: int = 32,
    key_bits: int = 64,
    seed: int = 0,
    ensure_empty: bool = True,
) -> list[tuple[int, int]]:
    """The "real queries" workload: left bounds are held-out real keys."""
    keys = np.asarray(keys, dtype=np.uint64)
    left_bounds = np.asarray(left_bounds, dtype=np.uint64)
    if left_bounds.size == 0:
        raise ValueError("need at least one left bound")
    top = (1 << key_bits) - 1
    rng = np.random.default_rng(seed)
    out: list[tuple[int, int]] = []
    attempts = 0
    while len(out) < n and attempts < 100 * n:
        attempts += 1
        lo = int(left_bounds[rng.integers(0, len(left_bounds))])
        size = int(_sizes(rng, 1, min_size, max_size)[0])
        hi = min(lo + size - 1, top)
        if ensure_empty and not is_empty_range(keys, lo, hi):
            continue
        out.append((lo, hi))
    if len(out) < n:
        raise RuntimeError(
            f"could not generate {n} empty real queries (got {len(out)})"
        )
    return out


def point_queries(
    keys: np.ndarray,
    n: int,
    *,
    key_bits: int = 64,
    seed: int = 0,
    ensure_empty: bool = True,
) -> list[tuple[int, int]]:
    """Point queries — ranges of size 1."""
    return uniform_range_queries(
        keys,
        n,
        min_size=1,
        max_size=1,
        key_bits=key_bits,
        seed=seed,
        ensure_empty=ensure_empty,
    )
