"""Datasets and query workloads of the evaluation (Section V-A).

Key sets: a uniform synthetic dataset plus statistical stand-ins for the
four SOSD real datasets (amzn, face, osmc, wiki) with the paper's skew
ordering.  Query workloads: uniform range queries of size 2–32 and 2–64,
point queries, correlated range queries (key + 32 as the left bound), and
"real" range queries whose left bounds are held-out keys.  All query
generators can enforce the paper's protocol that every query is empty.
"""

from repro.workloads.datasets import (
    DATASET_NAMES,
    dataset_skew,
    generate_keys,
    split_keys,
)
from repro.workloads.queries import (
    correlated_range_queries,
    is_empty_range,
    left_bounded_range_queries,
    point_queries,
    uniform_range_queries,
)
from repro.workloads.ycsb import YCSB_MIXES, run_ycsb, ycsb_operations

__all__ = [
    "DATASET_NAMES",
    "dataset_skew",
    "generate_keys",
    "split_keys",
    "correlated_range_queries",
    "is_empty_range",
    "left_bounded_range_queries",
    "point_queries",
    "uniform_range_queries",
    "YCSB_MIXES",
    "run_ycsb",
    "ycsb_operations",
]
