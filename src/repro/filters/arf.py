"""ARF — Adaptive Range Filter (VLDB 2013), a related-work extra.

ARF is the trie-based ancestor of SuRF (Section II-B): a binary trie over
the *key domain* whose leaves carry one occupancy bit, trained by
splitting leaves that cause false positives on sample queries.  The
REncoder paper discusses but does not benchmark it; it is included here
for completeness and used in the ablation benches.

Training: every sampled empty query that currently hits an occupied leaf
forces splits of the intersecting leaves (occupancy recomputed from the
keys) until the query is answered negatively or the leaf budget is
exhausted.  Encoding cost is the classic ARF accounting: 1 shape bit per
node plus 1 occupancy bit per leaf.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.filters.base import RangeFilter, as_key_array

__all__ = ["AdaptiveRangeFilter"]


class _Node:
    __slots__ = ("lo", "hi", "left", "right", "occupied")

    def __init__(self, lo: int, hi: int, occupied: bool) -> None:
        self.lo = lo
        self.hi = hi
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.occupied = occupied

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class AdaptiveRangeFilter(RangeFilter):
    """Query-trained binary trie over the key domain."""

    name = "ARF"

    def __init__(
        self,
        keys: Iterable[int] | np.ndarray,
        total_bits: int | None = None,
        *,
        bits_per_key: float = 16.0,
        key_bits: int = 64,
        training_queries: Sequence[tuple[int, int]] = (),
        seed: int = 0,  # unused; uniform harness signature
    ) -> None:
        super().__init__(key_bits)
        self._keys = as_key_array(keys)
        self.n_keys = int(self._keys.size)
        if total_bits is None:
            total_bits = max(64, int(round(bits_per_key * max(1, self.n_keys))))
        # Each split adds 2 nodes at ~2 bits apiece.
        self._max_nodes = max(3, total_bits // 2)
        self._n_nodes = 1
        top = (1 << key_bits) - 1
        self._root = _Node(0, top, self.n_keys > 0)
        self.probe_counter = 0
        # ARF "first builds a full trie" from the data: split occupied
        # leaves holding more than one key until each key is isolated (or
        # half the node budget is spent), then training refines the shape.
        self._presplit()
        for lo, hi in training_queries:
            self._train_one(lo, hi)

    def _presplit(self) -> None:
        # Reserve a tenth of the node budget for query training.
        budget = self._max_nodes - self._max_nodes // 10
        queue = [self._root]
        head = 0
        while head < len(queue) and self._n_nodes + 2 <= budget:
            node = queue[head]
            head += 1
            if node.lo >= node.hi or not node.occupied:
                continue
            mid = node.lo + (node.hi - node.lo) // 2
            node.left = _Node(node.lo, mid, self._occupied(node.lo, mid))
            node.right = _Node(mid + 1, node.hi, self._occupied(mid + 1, node.hi))
            self._n_nodes += 2
            for child in (node.left, node.right):
                if child.occupied:
                    queue.append(child)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def _occupied(self, lo: int, hi: int) -> bool:
        i = int(np.searchsorted(self._keys, np.uint64(lo)))
        return i < self.n_keys and int(self._keys[i]) <= hi

    def _train_one(self, q_lo: int, q_hi: int) -> None:
        """Split leaves until the (empty) query is answered negatively."""
        if self._occupied(q_lo, q_hi):
            return  # non-empty query: nothing to learn
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.hi < q_lo or node.lo > q_hi:
                continue
            if node.is_leaf:
                if not node.occupied:
                    continue
                # Occupied leaf intersecting an empty query: split while
                # budget allows and the leaf is divisible.
                while (
                    node.is_leaf
                    and node.occupied
                    and node.lo < node.hi
                    and self._n_nodes + 2 <= self._max_nodes
                ):
                    mid = node.lo + (node.hi - node.lo) // 2
                    node.left = _Node(
                        node.lo, mid, self._occupied(node.lo, mid)
                    )
                    node.right = _Node(
                        mid + 1, node.hi, self._occupied(mid + 1, node.hi)
                    )
                    self._n_nodes += 2
                    for child in (node.left, node.right):
                        if not (child.hi < q_lo or child.lo > q_hi):
                            stack.append(child)
                    break
            else:
                stack.append(node.left)
                stack.append(node.right)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.probe_counter += 1
            if node.hi < lo or node.lo > hi:
                continue
            if node.is_leaf:
                if node.occupied:
                    return True
                continue
            stack.append(node.left)
            stack.append(node.right)
        return False

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """ARF accounting: 1 shape bit per node + 1 occupancy bit per leaf."""
        leaves = (self._n_nodes + 1) // 2
        return self._n_nodes + leaves

    @property
    def probe_count(self) -> int:
        return self.probe_counter

    def reset_counters(self) -> None:
        self.probe_counter = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AdaptiveRangeFilter(n={self.n_keys}, nodes={self._n_nodes}, "
            f"bits={self.size_in_bits()})"
        )
