"""SuRF — the Succinct Range Filter (SIGMOD 2018) baseline.

SuRF prunes the key trie at each key's shortest distinguishing byte-prefix
and encodes the result in the LOUDS-DS hybrid of the SuRF paper
(:class:`~repro.trie.fst.FastSuccinctTrie`: 256-bit-bitmap LOUDS-Dense
head over a LOUDS-Sparse body).  Because everything below the pruning
point is discarded, queries that agree with a stored prefix cannot be
refuted — SuRF's characteristic false positives, which explode on
correlated workloads (the paper's Figure 9).

Suffix modes (matching the SuRF paper; the REncoder paper evaluates
SuRF-Mixed):

* ``base``  — trie only;
* ``hash``  — ``hash_bits`` of a key hash per leaf: sharpens *point*
  queries only (a range probe cannot use a hash);
* ``real``  — ``real_bits`` of the key's bits just below the pruned
  prefix: sharpens both point and range queries;
* ``mixed`` — both (default, with 4 + 4 bits).

SuRF has no memory knob: its size is whatever the pruned trie needs, which
is why it appears as a flat line across the BPK axis in the paper's
figures.  ``size_in_bits`` uses succinct accounting (512 bits per dense
node, ~10.6 bits per sparse edge, plus suffix bits).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.filters.base import RangeFilter, as_key_array
from repro.hashing.mix64 import mix64
from repro.trie.fst import FastSuccinctTrie

__all__ = ["SuRF"]

_MODES = ("base", "hash", "real", "mixed")


class SuRF(RangeFilter):
    """Succinct Range Filter over fixed-width integer keys."""

    name = "SuRF"

    def __init__(
        self,
        keys: Iterable[int] | np.ndarray,
        *,
        mode: str = "mixed",
        hash_bits: int | None = None,
        real_bits: int | None = None,
        key_bits: int = 64,
        dense_ratio: int = 16,
        seed: int = 0,
    ) -> None:
        super().__init__(key_bits)
        if key_bits % 8:
            raise ValueError(
                f"SuRF operates on byte-aligned keys; key_bits={key_bits}"
            )
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        if hash_bits is None:
            hash_bits = {"base": 0, "hash": 8, "real": 0, "mixed": 4}[mode]
        if real_bits is None:
            real_bits = {"base": 0, "hash": 0, "real": 8, "mixed": 4}[mode]
        if mode in ("base", "real"):
            hash_bits = 0
        if mode in ("base", "hash"):
            real_bits = 0
        self.hash_bits = hash_bits
        self.real_bits = real_bits
        self.seed = seed

        key_arr = as_key_array(keys)
        if key_arr.size and int(key_arr[-1]) >= (1 << key_bits):
            raise ValueError("key outside the declared key_bits domain")
        self.n_keys = int(key_arr.size)
        self.trie = FastSuccinctTrie(
            key_arr, key_bytes=key_bits // 8, dense_ratio=dense_ratio
        )
        self._build_suffixes(key_arr)
        self.probe_counter = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_suffixes(self, keys: np.ndarray) -> None:
        """Per-key suffix records, indexed by key position."""
        n = self.n_keys
        self._hash_suffix = np.zeros(n, dtype=np.uint16)
        if self.hash_bits:
            for idx in range(n):
                self._hash_suffix[idx] = mix64(int(keys[idx]) ^ self.seed) & (
                    (1 << self.hash_bits) - 1
                )
        self._keys_ref = keys  # used only to slice real-suffix bits

    def _real_suffix(self, key_idx: int, depth: int) -> tuple[int, int]:
        """(suffix value, width) of the real bits just below the prefix."""
        if not self.real_bits:
            return 0, 0
        below = self.key_bits - 8 * depth
        width = min(self.real_bits, below)
        if not width:
            return 0, 0
        key = int(self._keys_ref[key_idx])
        return (key >> (below - width)) & ((1 << width) - 1), width

    # ------------------------------------------------------------------
    # leaf geometry helpers
    # ------------------------------------------------------------------
    def _leaf_bounds(self, key_idx: int, depth: int) -> tuple[int, int]:
        """Min and max full keys compatible with a leaf's stored bits."""
        lo = self.trie.prefix_value(key_idx, depth)
        below = self.key_bits - 8 * depth
        suffix, width = self._real_suffix(key_idx, depth)
        unknown = below - width
        if width:
            lo |= suffix << unknown
        return lo, (lo | ((1 << unknown) - 1)) if unknown else lo

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_point(self, key: int) -> bool:
        self._check_range(key, key)
        self.probe_counter += 1
        found = self.trie.lookup(self._bytes(key))
        if found is None:
            return False
        key_idx, depth = found
        if self.hash_bits:
            expect = mix64(key ^ self.seed) & ((1 << self.hash_bits) - 1)
            if int(self._hash_suffix[key_idx]) != expect:
                return False
        if self.real_bits:
            lo, hi = self._leaf_bounds(key_idx, depth)
            if not lo <= key <= hi:
                return False
        return True

    def query_range(self, lo: int, hi: int) -> bool:
        """``moveToKeyGreaterThan(lo)`` then compare with ``hi``."""
        self._check_range(lo, hi)
        self.probe_counter += 1
        if lo == hi:
            return self.query_point(lo)

        def reject(key_idx: int, depth: int) -> bool:
            # Ambiguous leaf (stored prefix is a prefix of lo): the real
            # suffix may prove every compatible key is below lo.
            _, max_key = self._leaf_bounds(key_idx, depth)
            return max_key < lo

        found = self.trie.lower_bound(self._bytes(lo), reject=reject)
        if found is None:
            return False
        key_idx, depth, _ = found
        min_key, _ = self._leaf_bounds(key_idx, depth)
        return min_key <= hi

    def _bytes(self, key: int) -> bytes:
        return key.to_bytes(self.key_bits // 8, "big")

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        return self.trie.size_in_bits() + self.n_keys * (
            self.hash_bits + self.real_bits
        )

    @property
    def probe_count(self) -> int:
        return self.probe_counter

    def reset_counters(self) -> None:
        self.probe_counter = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SuRF(mode={self.mode}, n={self.n_keys}, "
            f"cutoff={self.trie.cutoff}, bits={self.size_in_bits()}, "
            f"bpk={self.size_in_bits() / max(1, self.n_keys):.1f})"
        )
