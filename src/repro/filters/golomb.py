"""Golomb-Rice coding of monotone integer sequences.

SNARF compresses its sparse bit array by Rice-coding the gaps between set
bits, in fixed-count blocks with a per-block offset directory for random
access.  This module implements the bitstream codec:

* :class:`BitWriter` / :class:`BitReader` — LSB-first bitstreams over a
  growable byte array;
* :func:`rice_encode_gaps` / :class:`RiceBlockArray` — blockwise encoding
  of a sorted position list with O(log #blocks + block) range queries.

A Rice code with parameter ``r`` writes ``q = gap >> r`` as unary and the
low ``r`` bits directly; for gaps averaging ``2^r`` this is within half a
bit of the gap entropy, which is how SNARF approaches the information
bound.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitWriter", "BitReader", "RiceBlockArray"]


class BitWriter:
    """Append-only LSB-first bit stream."""

    def __init__(self) -> None:
        self._words: list[int] = [0]
        self._used = 0  # bits used in the last word

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` of ``value``."""
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        value &= (1 << nbits) - 1
        while nbits > 0:
            space = 64 - self._used
            take = min(space, nbits)
            self._words[-1] |= (value & ((1 << take) - 1)) << self._used
            self._used += take
            value >>= take
            nbits -= take
            if self._used == 64:
                self._words.append(0)
                self._used = 0

    def write_unary(self, q: int) -> None:
        """Append ``q`` zero bits then a one bit."""
        while q >= 64:
            # pad with zeros to the next word boundary (or a full word)
            if self._used:
                pad = 64 - self._used
                self.write_bits(0, pad)
                q -= pad
            else:
                self._words.append(0)
                q -= 64
        self.write_bits(1 << q, q + 1)

    @property
    def bit_length(self) -> int:
        return (len(self._words) - 1) * 64 + self._used

    def to_array(self) -> np.ndarray:
        """The stream as uint64 words (LSB-first within each word)."""
        return np.array(self._words, dtype=np.uint64)


class BitReader:
    """Sequential LSB-first reader positioned anywhere in the stream."""

    def __init__(self, words: np.ndarray, bit_offset: int = 0) -> None:
        self._words = words
        self.pos = bit_offset

    def read_bits(self, nbits: int) -> int:
        """Read and return the next ``nbits`` (LSB-first)."""
        value = 0
        got = 0
        while got < nbits:
            word, off = divmod(self.pos, 64)
            take = min(64 - off, nbits - got)
            chunk = (int(self._words[word]) >> off) & ((1 << take) - 1)
            value |= chunk << got
            got += take
            self.pos += take
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value (count of zeros before a one)."""
        q = 0
        while True:
            word, off = divmod(self.pos, 64)
            chunk = int(self._words[word]) >> off
            if chunk == 0:
                q += 64 - off
                self.pos += 64 - off
                continue
            tz = (chunk & -chunk).bit_length() - 1
            q += tz
            self.pos += tz + 1
            return q


class RiceBlockArray:
    """Rice-coded sorted position list with blockwise random access.

    Parameters
    ----------
    positions:
        Sorted (non-decreasing) non-negative integer positions.
    rice_param:
        ``r`` — low bits stored verbatim; gaps are expected around ``2^r``.
    block_size:
        Set-bit count per block; each block stores its absolute first
        position in a directory for binary search.
    """

    def __init__(
        self,
        positions: np.ndarray,
        rice_param: int,
        block_size: int = 32,
    ) -> None:
        if rice_param < 0:
            raise ValueError(f"rice_param must be >= 0, got {rice_param}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size > 1 and (np.diff(positions) < 0).any():
            raise ValueError("positions must be sorted")
        self.r = rice_param
        self.block_size = block_size
        self.n = int(positions.size)
        starts: list[int] = []
        offsets: list[int] = []
        writer = BitWriter()
        for b in range(0, self.n, block_size):
            block = positions[b : b + block_size]
            starts.append(int(block[0]))
            offsets.append(writer.bit_length)
            prev = int(block[0])
            for value in block[1:]:
                gap = int(value) - prev
                prev = int(value)
                writer.write_unary(gap >> self.r)
                writer.write_bits(gap, self.r)
        self._stream = writer.to_array()
        self._block_start = np.array(starts, dtype=np.int64)
        self._block_offset = np.array(offsets, dtype=np.int64)
        self._payload_bits = writer.bit_length

    def any_in_range(self, lo: int, hi: int) -> tuple[bool, int]:
        """Is any stored position in ``[lo, hi]``?  Also returns the number
        of decoded entries (the probe-cost proxy for the harness)."""
        if self.n == 0 or hi < lo:
            return False, 0
        if int(self._block_start[0]) > hi:
            return False, 0
        # First candidate block: the last one starting at or before lo
        # (earlier blocks end before lo reaches them only if this one does).
        b = max(0, int(np.searchsorted(self._block_start, lo, side="right")) - 1)
        decoded = 0
        for blk in range(b, len(self._block_start)):
            first = int(self._block_start[blk])
            if first > hi:
                break
            pos = first
            decoded += 1
            if pos >= lo:
                return True, decoded
            reader = BitReader(self._stream, int(self._block_offset[blk]))
            count = min(self.block_size, self.n - blk * self.block_size)
            for _ in range(count - 1):
                gap = (reader.read_unary() << self.r) | reader.read_bits(self.r)
                pos += gap
                decoded += 1
                if pos > hi:
                    return False, decoded
                if pos >= lo:
                    return True, decoded
        return False, decoded

    def decode_all(self) -> np.ndarray:
        """Decode the full position list (tests / debugging)."""
        out = np.empty(self.n, dtype=np.int64)
        idx = 0
        for blk in range(len(self._block_start)):
            pos = int(self._block_start[blk])
            out[idx] = pos
            idx += 1
            reader = BitReader(self._stream, int(self._block_offset[blk]))
            count = min(self.block_size, self.n - blk * self.block_size)
            for _ in range(count - 1):
                gap = (reader.read_unary() << self.r) | reader.read_bits(self.r)
                pos += gap
                out[idx] = pos
                idx += 1
        return out

    def size_in_bits(self) -> int:
        """Payload plus the block directory (start + offset per block)."""
        directory = len(self._block_start) * (64 + 32)
        return self._payload_bits + directory
