"""Shifting Bloom Filter (ShBF, VLDB 2016) — related-work extra.

Section II-C of the REncoder paper singles out ShBF as the closest Bloom
variant: "Both ShBF and REncoder take advantage of the locality to reduce
hash operations … ShBF [encodes] partial information of an item in a
location offset … In fact, ShBF is orthogonal to REncoder."

This is the membership variant (ShBF-M): each of ``ceil(k/2)`` hash
computations sets *two* bits — one at the hashed position ``P_i`` and one
at ``P_i + o(x)``, where the offset ``o(x) ∈ [1, w]`` is itself derived
from the key — so one hash computation (and, in C, one cache-line fetch
covering both bits) carries the evidence of two classic Bloom probes.
The FPR matches a standard ``k``-hash Bloom filter while halving hash
work; the probe counter reflects the halved memory touches.

Included as a point-membership baseline (range queries fall back to the
scan-the-range strategy of the plain Bloom filter) and to demonstrate
the "orthogonal" claim: an RBF could use ShBF-style paired windows on
top of Bitmap Trees.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.filters.base import RangeFilter, as_key_array
from repro.hashing.mix64 import HashFamily, mix64

__all__ = ["ShiftingBloomFilter"]

#: Maximum offset (the paper uses the machine-word / cache-line span so
#: both bits of a pair sit in one fetch).
_MAX_OFFSET = 63


class ShiftingBloomFilter(RangeFilter):
    """ShBF-M: membership Bloom filter with offset-paired bits."""

    name = "ShBF"

    def __init__(
        self,
        keys: Iterable[int] | np.ndarray,
        total_bits: int | None = None,
        *,
        bits_per_key: float = 16.0,
        key_bits: int = 64,
        k: int | None = None,
        seed: int = 0,
        max_range_probes: int = 1 << 16,
    ) -> None:
        super().__init__(key_bits)
        key_arr = as_key_array(keys)
        self.n_keys = int(key_arr.size)
        if total_bits is None:
            total_bits = max(64, int(round(bits_per_key * max(1, self.n_keys))))
        self.bits = max(128, (total_bits // 64) * 64)
        if k is None:
            k = max(2, int(round(np.log(2.0) * self.bits /
                                 max(1, self.n_keys))))
        # Effective bit-evidence k, realised by ceil(k/2) hash pairs.
        self.k = k
        self.n_pairs = (k + 1) // 2
        self.seed = seed
        self.max_range_probes = max_range_probes
        self._array = np.zeros(self.bits // 64 + 1, dtype=np.uint64)
        # Positions leave headroom for the offset.
        self._family = HashFamily(
            self.n_pairs, self.bits - _MAX_OFFSET, seed
        )
        self._offset_seed = mix64(seed ^ 0x5348_4246)
        self.probe_counter = 0
        for key in key_arr:
            self._insert(int(key))

    # ------------------------------------------------------------------
    def _offset(self, key: int) -> int:
        """Key-derived offset in ``[1, _MAX_OFFSET]`` (the shifted bit)."""
        return 1 + (mix64(key ^ self._offset_seed) % _MAX_OFFSET)

    def _set(self, pos: int) -> None:
        self._array[pos >> 6] |= np.uint64(1 << (pos & 63))

    def _get(self, pos: int) -> bool:
        return bool((int(self._array[pos >> 6]) >> (pos & 63)) & 1)

    def _insert(self, key: int) -> None:
        offset = self._offset(key)
        for pos in self._family.positions(key):
            self._set(pos)
            self._set(pos + offset)

    def insert(self, key: int) -> None:
        """Incremental insert (memtable-flush convenience)."""
        self._insert(key)
        self.n_keys += 1

    # ------------------------------------------------------------------
    def query_point(self, key: int) -> bool:
        self._check_range(key, key)
        # One probe per PAIR: the paper's point — both bits share a fetch.
        self.probe_counter += self.n_pairs
        offset = self._offset(key)
        for pos in self._family.positions(key):
            if not (self._get(pos) and self._get(pos + offset)):
                return False
        return True

    def query_range(self, lo: int, hi: int) -> bool:
        """Scan-the-range fallback (ShBF is a point filter)."""
        self._check_range(lo, hi)
        if hi - lo + 1 > self.max_range_probes:
            return True
        return any(self.query_point(key) for key in range(lo, hi + 1))

    # ------------------------------------------------------------------
    @property
    def p1(self) -> float:
        return float(np.bitwise_count(self._array).sum()) / self.bits

    def size_in_bits(self) -> int:
        return self.bits

    @property
    def probe_count(self) -> int:
        return self.probe_counter

    def reset_counters(self) -> None:
        self.probe_counter = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShiftingBloomFilter(n={self.n_keys}, bits={self.bits}, "
            f"k={self.k} via {self.n_pairs} pairs, p1={self.p1:.3f})"
        )
