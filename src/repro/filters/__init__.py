"""Baseline range filters the paper compares against, plus the common
:class:`~repro.filters.base.RangeFilter` interface every filter (including
REncoder) implements."""

from repro.filters.arf import AdaptiveRangeFilter
from repro.filters.base import RangeFilter, as_key_array
from repro.filters.bloom import BloomFilter, optimal_k
from repro.filters.golomb import BitReader, BitWriter, RiceBlockArray
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.filters.proteus import Proteus, ProteusNS, cpfpr_choose_design
from repro.filters.rosetta import Rosetta
from repro.filters.shbf import ShiftingBloomFilter
from repro.filters.snarf import Snarf
from repro.filters.spatial import ZOrderRangeFilter
from repro.filters.surf import SuRF

__all__ = [
    "AdaptiveRangeFilter",
    "RangeFilter",
    "as_key_array",
    "BloomFilter",
    "optimal_k",
    "BitReader",
    "BitWriter",
    "RiceBlockArray",
    "PrefixBloomFilter",
    "Proteus",
    "ProteusNS",
    "cpfpr_choose_design",
    "Rosetta",
    "ShiftingBloomFilter",
    "Snarf",
    "ZOrderRangeFilter",
    "SuRF",
]
