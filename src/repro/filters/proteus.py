"""Proteus (SIGMOD 2022) — the self-designing hybrid baseline.

Proteus combines a truncated Fast Succinct Trie (the top ``trie_depth``
bytes of the keys) with a prefix Bloom filter over ``prefix_len``-bit
prefixes, and uses its Contextual Prefix FPR (CPFPR) model to choose the
pair ``(trie_depth, prefix_len)`` that minimises the expected FPR on a
sample of the workload.  A query is positive only if *both* components
pass:

* the trie answers exactly over truncated keys (may the range contain a
  stored ``trie_depth``-byte prefix?);
* the Bloom filter is probed for every ``prefix_len``-bit granule covering
  the range.

This reproduction implements the CPFPR selection as the paper describes it
operationally: enumerate the design grid, *evaluate the modelled FPR of
each design on the sampled queries* (exact trie behaviour computed from
the keys, Bloom behaviour from the standard FPR formula), and keep the
argmin.  ``Proteus`` (use case B) samples queries; ``ProteusNS`` is the
no-sampling default the REncoder paper uses — a pure prefix Bloom filter
with a 32-bit prefix.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.filters.base import RangeFilter, as_key_array
from repro.filters.bloom import BloomFilter, optimal_k

__all__ = ["Proteus", "ProteusNS", "cpfpr_choose_design"]

#: Succinct cost charged per trie edge (labels + two bit vectors, as in
#: :mod:`repro.trie.louds`).
_TRIE_BITS_PER_EDGE = 10.625


def _trie_edge_counts(keys: np.ndarray, key_bits: int) -> list[int]:
    """Edges of the truncated trie per byte depth d (prefix of d+1 bytes)."""
    counts = []
    for depth in range(key_bits // 8):
        shift = np.uint64(key_bits - 8 * (depth + 1))
        counts.append(int(len(np.unique(keys >> shift))))
    return counts


def _bloom_fpr(bits: int, n_items: int) -> float:
    """Standard Bloom FPR at the optimal k for the given load."""
    if n_items == 0:
        return 0.0
    k = optimal_k(bits, n_items)
    return (1.0 - math.exp(-k * n_items / max(1, bits))) ** k


def cpfpr_choose_design(
    keys: np.ndarray,
    total_bits: int,
    sample_queries: Sequence[tuple[int, int]],
    key_bits: int = 64,
) -> tuple[int, int]:
    """CPFPR model: choose ``(trie_depth_bytes, prefix_len_bits)``.

    For every candidate design the modelled FPR over the sampled queries
    is computed: the exact probability the truncated trie passes (from the
    keys) times the modelled probability the prefix Bloom filter passes
    (1 for granules that truly contain keys, the Bloom formula otherwise).
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if total_bits < 64:
        raise ValueError(f"total_bits too small: {total_bits}")
    edge_counts = _trie_edge_counts(keys, key_bits) if keys.size else []
    best = (0, 32)
    best_score = float("inf")
    queries = list(sample_queries)
    for trie_depth in range(0, key_bits // 8 + 1):
        trie_bits = int(
            _TRIE_BITS_PER_EDGE * sum(edge_counts[:trie_depth])
        )
        if trie_bits > total_bits:
            break
        bf_bits = total_bits - trie_bits
        for prefix_len in range(max(8, trie_depth * 8), key_bits + 1, 8):
            score = _estimate_design_fpr(
                keys, trie_depth, prefix_len, bf_bits, queries, key_bits
            )
            # Light preference for cheaper probe counts breaks ties.
            if score < best_score - 1e-12:
                best_score = score
                best = (trie_depth, prefix_len)
    return best


def _estimate_design_fpr(
    keys: np.ndarray,
    trie_depth: int,
    prefix_len: int,
    bf_bits: int,
    queries: Sequence[tuple[int, int]],
    key_bits: int,
) -> float:
    if not queries:
        return 1.0
    shift_bf = np.uint64(key_bits - prefix_len)
    granules = np.unique(keys >> shift_bf) if keys.size else keys
    f = _bloom_fpr(bf_bits, len(granules))
    if trie_depth:
        shift_t = np.uint64(key_bits - 8 * trie_depth)
        truncated = np.unique(keys >> shift_t) if keys.size else keys
    total = 0.0
    for lo, hi in queries:
        # Exact: does the truncated trie pass this query?
        if trie_depth:
            t_lo = lo >> (key_bits - 8 * trie_depth)
            t_hi = hi >> (key_bits - 8 * trie_depth)
            i = int(np.searchsorted(truncated, np.uint64(t_lo)))
            if not (i < len(truncated) and int(truncated[i]) <= t_hi):
                continue  # trie rejects: no FP possible
        g_lo = lo >> (key_bits - prefix_len)
        g_hi = hi >> (key_bits - prefix_len)
        p_pass = 1.0
        any_true = False
        for g in range(g_lo, min(g_hi, g_lo + 255) + 1):
            i = int(np.searchsorted(granules, np.uint64(g)))
            if i < len(granules) and int(granules[i]) == g:
                any_true = True
                break
        if any_true:
            total += 1.0
        else:
            probes = min(g_hi, g_lo + 255) - g_lo + 1
            total += 1.0 - (1.0 - f) ** probes
    return total / len(queries)


class Proteus(RangeFilter):
    """Hybrid truncated-trie + prefix-Bloom filter with CPFPR design."""

    name = "Proteus"

    def __init__(
        self,
        keys: Iterable[int] | np.ndarray,
        total_bits: int | None = None,
        *,
        bits_per_key: float = 16.0,
        key_bits: int = 64,
        sample_queries: Sequence[tuple[int, int]] = (),
        design: tuple[int, int] | None = None,
        seed: int = 0,
        max_prefix_probes: int = 1 << 12,
    ) -> None:
        super().__init__(key_bits)
        key_arr = as_key_array(keys)
        self.n_keys = int(key_arr.size)
        if total_bits is None:
            total_bits = max(64, int(round(bits_per_key * max(1, self.n_keys))))
        if design is None:
            design = cpfpr_choose_design(
                key_arr, total_bits, sample_queries, key_bits
            )
        self.trie_depth, self.prefix_len = design
        if not 0 <= self.trie_depth <= key_bits // 8:
            raise ValueError(f"invalid trie depth {self.trie_depth}")
        if not 1 <= self.prefix_len <= key_bits:
            raise ValueError(f"invalid prefix length {self.prefix_len}")
        self.max_prefix_probes = max_prefix_probes

        # Truncated trie: exact sorted array of trie_depth-byte prefixes
        # (navigationally equivalent to the FST; costed at succinct rates).
        if self.trie_depth:
            shift = np.uint64(key_bits - 8 * self.trie_depth)
            self._truncated = np.unique(key_arr >> shift)
            edge_counts = _trie_edge_counts(key_arr, key_bits)
            self._trie_bits = int(
                _TRIE_BITS_PER_EDGE * sum(edge_counts[: self.trie_depth])
            )
        else:
            self._truncated = np.zeros(0, dtype=np.uint64)
            self._trie_bits = 0

        bf_bits = max(64, total_bits - self._trie_bits)
        shift_bf = np.uint64(key_bits - self.prefix_len)
        granules = (
            np.unique(key_arr >> shift_bf) if key_arr.size else key_arr
        )
        self._bloom = BloomFilter(granules, bf_bits, key_bits=key_bits, seed=seed)
        self.trie_probe_counter = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _trie_pass(self, lo: int, hi: int) -> bool:
        if not self.trie_depth:
            return True
        self.trie_probe_counter += 1
        shift = self.key_bits - 8 * self.trie_depth
        t_lo = lo >> shift
        t_hi = hi >> shift
        i = int(np.searchsorted(self._truncated, np.uint64(t_lo)))
        return i < len(self._truncated) and int(self._truncated[i]) <= t_hi

    def query_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        if not self._trie_pass(lo, hi):
            return False
        shift = self.key_bits - self.prefix_len
        first = lo >> shift
        last = hi >> shift
        if last - first + 1 > self.max_prefix_probes:
            return True  # conservative, never a false negative
        return any(
            self._bloom.query_point(g) for g in range(first, last + 1)
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        return self._trie_bits + self._bloom.size_in_bits()

    @property
    def probe_count(self) -> int:
        return self._bloom.probe_count + self.trie_probe_counter

    def reset_counters(self) -> None:
        self._bloom.reset_counters()
        self.trie_probe_counter = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(n={self.n_keys}, "
            f"design=(trie_depth={self.trie_depth}B, "
            f"prefix_len={self.prefix_len}b), bits={self.size_in_bits()})"
        )


class ProteusNS(Proteus):
    """Proteus without sampling: the default 32-bit prefix Bloom design."""

    name = "ProteusNS"

    def __init__(
        self,
        keys: Iterable[int] | np.ndarray,
        total_bits: int | None = None,
        **kwargs,
    ) -> None:
        kwargs.pop("design", None)
        kwargs.pop("sample_queries", None)
        prefix_len = min(32, kwargs.get("key_bits", 64))
        super().__init__(keys, total_bits, design=(0, prefix_len), **kwargs)
