"""SNARF (VLDB 2022) — the learned range filter baseline.

SNARF learns a monotone CDF model of the key set, maps every key through
the model into a sparse bit array of ``P`` positions per key, and
compresses the array with blockwise Golomb-Rice coding.  A range query
maps both endpoints through the same model and asks whether any set bit
falls between them; monotonicity makes false negatives impossible.

The model here is the same family SNARF uses — a piecewise-linear spline
through every ``spline_granularity``-th key.  Because queries and keys go
through one shared monotone map, SNARF's accuracy tracks how well the
spline separates nearby values: excellent on smooth key distributions,
and — exactly as the REncoder paper's Figure 9 shows — useless on
correlated workloads, where query endpoints collapse onto the stored key's
own bit.

Memory accounting: Rice payload + block directory + spline knots.  The
Rice parameter is chosen from the budget: ``r ≈ bpk − 2 − overheads``
so the coded array lands on the requested bits-per-key.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.filters.base import RangeFilter, as_key_array
from repro.filters.golomb import RiceBlockArray

__all__ = ["Snarf"]


class Snarf(RangeFilter):
    """Sparse Numerical Array-Based Range Filter."""

    name = "SNARF"

    def __init__(
        self,
        keys: Iterable[int] | np.ndarray,
        total_bits: int | None = None,
        *,
        bits_per_key: float = 16.0,
        key_bits: int = 64,
        spline_granularity: int = 64,
        block_size: int = 32,
        seed: int = 0,  # unused; kept for a uniform harness signature
    ) -> None:
        super().__init__(key_bits)
        if spline_granularity < 2:
            raise ValueError(
                f"spline_granularity must be >= 2, got {spline_granularity}"
            )
        key_arr = as_key_array(keys)
        self.n_keys = int(key_arr.size)
        if total_bits is None:
            total_bits = max(64, int(round(bits_per_key * max(1, self.n_keys))))

        # ------------------------------------------------------------
        # CDF model: spline knots at every g-th key (plus both ends).
        # ------------------------------------------------------------
        self.granularity = spline_granularity
        top = float(1 << key_bits)
        if self.n_keys:
            idx = np.arange(0, self.n_keys, spline_granularity)
            if idx[-1] != self.n_keys - 1:
                idx = np.append(idx, self.n_keys - 1)
            knot_keys = list(key_arr[idx].astype(np.float64))
            knot_ranks = list(idx.astype(np.float64))
            # Sentinel knots keep out-of-range queries off the first/last
            # key's bit: values below the min key map below rank 0, values
            # above the max key map above rank n-1.
            if knot_keys[0] > 0.0:
                knot_keys.insert(0, 0.0)
                knot_ranks.insert(0, -1.0)
            if knot_keys[-1] < top:
                knot_keys.append(top)
                knot_ranks.append(float(self.n_keys))
            self._knot_keys = np.array(knot_keys, dtype=np.float64)
            self._knot_ranks = np.array(knot_ranks, dtype=np.float64)
        else:
            self._knot_keys = np.zeros(1, dtype=np.float64)
            self._knot_ranks = np.zeros(1, dtype=np.float64)
        model_bits = 96 * len(self._knot_keys)  # 64-bit key + 32-bit rank

        # ------------------------------------------------------------
        # Rice parameter from the remaining budget.
        # ------------------------------------------------------------
        n = max(1, self.n_keys)
        directory_bits_per_key = 96.0 / block_size
        budget_per_key = (total_bits - model_bits) / n
        self.rice_param = max(
            0, int(round(budget_per_key - 2.0 - directory_bits_per_key))
        )
        self.multiplier = 1 << self.rice_param  # P: array positions per key

        positions = np.sort(self._map(key_arr)) if self.n_keys else key_arr
        self._bits = RiceBlockArray(
            positions.astype(np.int64), self.rice_param, block_size
        )
        self.probe_counter = 0
        self.decoded_counter = 0

    # ------------------------------------------------------------------
    # model
    # ------------------------------------------------------------------
    def _map(self, values: np.ndarray | float) -> np.ndarray:
        """Monotone map key → bit-array position via the spline CDF."""
        ranks = np.interp(
            np.asarray(values, dtype=np.float64),
            self._knot_keys,
            self._knot_ranks,
        )
        return np.floor(ranks * self.multiplier).astype(np.int64)

    def _map_scalar(self, value: int) -> int:
        return int(self._map(np.array([float(value)]))[0])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        self.probe_counter += 1
        p_lo = self._map_scalar(lo)
        p_hi = self._map_scalar(hi)
        hit, decoded = self._bits.any_in_range(p_lo, p_hi)
        self.decoded_counter += decoded
        return hit

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        return self._bits.size_in_bits() + 96 * len(self._knot_keys)

    @property
    def probe_count(self) -> int:
        """Decoded Rice entries — SNARF's probe-cost proxy."""
        return self.decoded_counter

    def reset_counters(self) -> None:
        self.probe_counter = 0
        self.decoded_counter = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Snarf(n={self.n_keys}, bits={self.size_in_bits()}, "
            f"rice_r={self.rice_param}, P={self.multiplier})"
        )
