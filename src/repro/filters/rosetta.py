"""Rosetta (SIGMOD 2020) — the Bloom-filter-based range filter baseline.

Rosetta organises all prefixes of the keys in an implicit segment tree and
stores each stored level in its **own** standard Bloom filter.  A range
query is dyadically decomposed; each sub-range prefix is checked in its
level's filter, and positives are "doubted" by recursively probing the two
children until a leaf confirms or every path dies (Section II-B of the
REncoder paper).

This reproduction follows the configuration the REncoder paper evaluates:

* the bottom ``log2(Rmax) + 1`` levels are stored (the paper sizes Rosetta
  "according to 2∼64 range queries", i.e. ``Rmax = 64`` ⇒ 7 levels);
* memory is divided between the level filters either equally or
  proportionally to each level's distinct-prefix count (``allocation``);
  sample queries, when provided, bias the allocation toward the levels the
  workload actually probes (Rosetta is the use-case-B filter: it is
  allowed to sample queries);
* each level filter uses its own FPR-optimal hash count.

Every Bloom probe is ``k_level`` memory accesses; REncoder's advantage in
the paper's Figure 6 is precisely that Rosetta re-hashes and re-probes for
every level of every sub-range while REncoder fetches one Bitmap Tree.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.decompose import decompose
from repro.filters.base import RangeFilter, as_key_array
from repro.filters.bloom import BloomFilter

__all__ = ["Rosetta"]


class Rosetta(RangeFilter):
    """Per-level Bloom filters with recursive doubting."""

    name = "Rosetta"

    def __init__(
        self,
        keys: Iterable[int] | np.ndarray,
        total_bits: int | None = None,
        *,
        bits_per_key: float = 16.0,
        key_bits: int = 64,
        rmax: int = 64,
        allocation: str | None = None,
        bottom_ratio: float = 0.5,
        sample_queries: Sequence[tuple[int, int]] = (),
        seed: int = 0,
        max_expansion: int = 4096,
    ) -> None:
        super().__init__(key_bits)
        if rmax < 1:
            raise ValueError(f"rmax must be positive, got {rmax}")
        if allocation is None:
            # Rosetta is the use-case-B filter: it samples the workload
            # when it can and falls back to the bottom-heavy prior.
            allocation = "sampled" if sample_queries else "bottom_heavy"
        if allocation not in ("bottom_heavy", "proportional", "equal",
                              "sampled"):
            raise ValueError(
                "allocation must be 'bottom_heavy', 'proportional', "
                f"'equal' or 'sampled', got {allocation!r}"
            )
        if allocation == "sampled" and not sample_queries:
            raise ValueError("allocation='sampled' needs sample_queries")
        if not 0.0 < bottom_ratio <= 1.0:
            raise ValueError(
                f"bottom_ratio must be in (0, 1], got {bottom_ratio}"
            )
        self._bottom_ratio = bottom_ratio
        key_arr = as_key_array(keys)
        self.n_keys = int(key_arr.size)
        if total_bits is None:
            total_bits = max(64, int(round(bits_per_key * max(1, self.n_keys))))
        depth = min(key_bits, (rmax - 1).bit_length() + 1)
        self.levels = list(range(key_bits - depth + 1, key_bits + 1))
        self.max_expansion = max_expansion

        # Distinct prefixes per stored level drive proportional allocation.
        prefix_sets: dict[int, np.ndarray] = {}
        for level in self.levels:
            if key_arr.size:
                prefix_sets[level] = np.unique(
                    key_arr >> np.uint64(key_bits - level)
                )
            else:
                prefix_sets[level] = key_arr
        counts = {lvl: max(1, len(prefix_sets[lvl])) for lvl in self.levels}

        if allocation == "sampled":
            weights = self._sampled_weights(
                counts, prefix_sets, sample_queries
            )
        else:
            weights = self._allocation_weights(
                allocation, counts, sample_queries
            )
        total_weight = sum(weights.values())
        self.filters: dict[int, BloomFilter] = {}
        for level in self.levels:
            bits = max(64, int(total_bits * weights[level] / total_weight))
            self.filters[level] = BloomFilter(
                prefix_sets[level],
                bits,
                key_bits=key_bits,
                seed=seed ^ (level * 0x9E37),
            )
        self._min_level = self.levels[0]

    def _allocation_weights(
        self,
        allocation: str,
        counts: dict[int, int],
        sample_queries: Sequence[tuple[int, int]],
    ) -> dict[int, float]:
        if allocation == "equal":
            weights = {lvl: 1.0 for lvl in self.levels}
        elif allocation == "proportional":
            weights = {lvl: float(counts[lvl]) for lvl in self.levels}
        else:
            # Rosetta's published analysis concentrates memory on the bottom
            # level (it alone decides the final answer of every doubting
            # descent); upper levels get geometrically less, just enough to
            # prune descents early.
            bottom = self.levels[-1]
            weights = {
                lvl: self._bottom_ratio ** (bottom - lvl)
                for lvl in self.levels
            }
        if sample_queries:
            # Bias toward levels the sampled workload's decomposition and
            # doubting descent actually touch (a lightweight stand-in for
            # Rosetta's full workload-driven optimisation).
            touched = {lvl: 1.0 for lvl in self.levels}
            for lo, hi in sample_queries:
                for _, length in decompose(lo, hi, self.key_bits):
                    for lvl in range(max(self._safe(length), length), self.key_bits + 1):
                        if lvl in touched:
                            touched[lvl] += 1.0
            total = sum(touched.values())
            for lvl in weights:
                weights[lvl] *= 0.5 + touched[lvl] / total
        return weights

    def _sampled_weights(
        self,
        counts: dict[int, int],
        prefix_sets: dict[int, np.ndarray],
        sample_queries: Sequence[tuple[int, int]],
    ) -> dict[int, float]:
        """Workload-driven allocation (Rosetta's use-case-B optimisation).

        Simulates the doubting descent of each sampled query against the
        *exact* prefix sets to count how often each level would be probed
        (``c_i``), then solves the Lagrange condition for minimising
        ``sum c_i · fpr_i(m_i)`` subject to ``sum m_i = M``:
        with ``fpr_i ≈ exp(-ln2² · m_i / n_i)``, optimal
        ``m_i ∝ n_i · (log(c_i / n_i) + const)`` — a water-filling over
        levels, floored at a token weight so no stored level is starved.
        """
        probes = {lvl: 1.0 for lvl in self.levels}
        for lo, hi in sample_queries:
            for prefix, length in decompose(lo, hi, self.key_bits):
                stack = [(prefix, max(length, self.levels[0]))]
                # Expand above-tree prefixes conservatively by one level
                # only; sampled ranges are small in practice.
                while stack:
                    p, l = stack.pop()
                    if l > self.key_bits:
                        continue
                    if l not in probes:
                        continue
                    probes[l] += 1.0
                    arr = prefix_sets[l]
                    idx = int(np.searchsorted(arr, np.uint64(p)))
                    present = idx < len(arr) and int(arr[idx]) == p
                    if present and l < self.key_bits:
                        stack.append((p << 1, l + 1))
                        stack.append(((p << 1) | 1, l + 1))
        # Start from the bottom-heavy prior (the bottom filter decides
        # every successful descent, so it always dominates) and modulate
        # each level by how often the sampled workload actually probes it
        # relative to its load.
        bottom = self.levels[-1]
        weights = {}
        for lvl in self.levels:
            prior = self._bottom_ratio ** (bottom - lvl)
            n_i = float(counts[lvl])
            c_i = probes[lvl]
            weights[lvl] = prior * (1.0 + math.log1p(c_i / max(1.0, n_i)))
        return weights

    def _safe(self, length: int) -> int:
        return max(length, self.levels[0])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_range(self, lo: int, hi: int) -> bool:
        self._check_range(lo, hi)
        return any(
            self._doubt(prefix, length)
            for prefix, length in decompose(lo, hi, self.key_bits)
        )

    def query_point(self, key: int) -> bool:
        """Rosetta point queries probe only the bottom filter (Section V-F)."""
        self._check_range(key, key)
        return self.filters[self.key_bits].query_point(key)

    def _doubt(self, prefix: int, length: int) -> bool:
        """Recursive doubting: descend until a leaf confirms or paths die.

        Prefixes above the shallowest stored level are unknown; they expand
        directly to their descendants at that level, capped conservatively.
        """
        budget = self.max_expansion
        stack: list[tuple[int, int]] = [(prefix, length)]
        while stack:
            p, l = stack.pop()
            if l == 0:
                return self.n_keys > 0
            if l < self._min_level:
                gap = self._min_level - l
                budget -= 1 << gap
                if budget < 0:
                    return True
                base = p << gap
                for ext in range((1 << gap) - 1, -1, -1):
                    stack.append((base | ext, self._min_level))
                continue
            if not self.filters[l].query_point(p):
                continue
            if l == self.key_bits:
                return True
            stack.append(((p << 1) | 1, l + 1))
            stack.append((p << 1, l + 1))
        return False

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        return sum(f.size_in_bits() for f in self.filters.values())

    @property
    def probe_count(self) -> int:
        return sum(f.probe_count for f in self.filters.values())

    def reset_counters(self) -> None:
        for f in self.filters.values():
            f.reset_counters()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ks = {lvl: f.k for lvl, f in self.filters.items()}
        return (
            f"Rosetta(n={self.n_keys}, bits={self.size_in_bits()}, "
            f"levels={self.levels[0]}..{self.levels[-1]}, k={ks})"
        )
