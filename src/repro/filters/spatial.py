"""2-D spatial range filter via Z-order (the paper's Use Case 3 recipe,
packaged as a standalone filter).

"We first transfer [2-D keys] to 1-dimensional by Z-order and then store
them in the range filters": this wrapper interleaves each point's
coordinates into a Morton code, stores the codes in any 1-D
:class:`~repro.filters.base.RangeFilter` (REncoder by default), and
answers rectangle queries by decomposing the rectangle into Z-intervals
and probing each.

One-sided like every filter here: a ``False`` proves the rectangle holds
no stored point.  Accuracy depends on the Z-decomposition granularity
(``max_zranges``) and on building the inner filter with an ``rmax``
matched to the largest Z-interval a query can produce — the constructor
derives it from ``max_query_extent``.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.filters.base import RangeFilter
from repro.storage.zorder import interleave, rect_to_zranges

__all__ = ["ZOrderRangeFilter"]


class ZOrderRangeFilter:
    """Rectangle-membership filter over 2-D integer points."""

    def __init__(
        self,
        points: Iterable[tuple[int, int]],
        *,
        coord_bits: int = 32,
        bits_per_key: float = 20.0,
        max_query_extent: int = 64,
        max_zranges: int = 256,
        filter_factory: Callable[..., RangeFilter] | None = None,
        seed: int = 0,
    ) -> None:
        if not 1 <= coord_bits <= 32:
            raise ValueError(f"coord_bits must be in [1, 32], got {coord_bits}")
        if max_query_extent < 1:
            raise ValueError(
                f"max_query_extent must be positive, got {max_query_extent}"
            )
        self.coord_bits = coord_bits
        self.max_zranges = max_zranges
        codes = np.unique(
            np.array(
                [interleave(x, y, coord_bits) for x, y in points],
                dtype=np.uint64,
            )
        )
        self.n_points = int(codes.size)
        # A square cell of side s covers a Z-interval of s^2 codes; the
        # largest cell the decomposition emits has side max_query_extent.
        z_rmax = max(2, min(1 << (2 * coord_bits),
                            max_query_extent * max_query_extent))
        if filter_factory is None:
            # Imported lazily: repro.core.rencoder itself imports
            # repro.filters.base, and a module-level import here would
            # close that cycle during package initialisation.
            from repro.core.rencoder import REncoder

            self.filter: RangeFilter = REncoder(
                codes,
                bits_per_key=bits_per_key,
                key_bits=2 * coord_bits,
                rmax=z_rmax,
                seed=seed,
            )
        else:
            self.filter = filter_factory(codes)

    # ------------------------------------------------------------------
    def query_rect(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> bool:
        """May any stored point lie in the rectangle (inclusive bounds)?"""
        ranges = rect_to_zranges(
            x_lo, x_hi, y_lo, y_hi, self.coord_bits, self.max_zranges
        )
        return any(self.filter.query_range(lo, hi) for lo, hi in ranges)

    def query_point(self, x: int, y: int) -> bool:
        """May the exact point be stored?"""
        z = interleave(x, y, self.coord_bits)
        return self.filter.query_range(z, z)

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Occupied memory in bits (the inner filter's)."""
        return self.filter.size_in_bits()

    @property
    def probe_count(self) -> int:
        return self.filter.probe_count

    def reset_counters(self) -> None:
        """Reset the inner filter's probe statistics."""
        self.filter.reset_counters()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ZOrderRangeFilter(points={self.n_points}, "
            f"coord_bits={self.coord_bits}, bits={self.size_in_bits()})"
        )
