"""Common interface for every range filter in the repository.

The bench harness (and the LSM / B+tree / R-tree substrates) treat all
filters uniformly through this ABC: REncoder and its variants, Rosetta,
SuRF, SNARF, Proteus, the plain Bloom filter and the prefix Bloom filter.

Contract
--------
* ``query_range(lo, hi)`` / ``query_point(key)`` — one-sided: a ``False``
  answer is always correct (no false negatives); ``True`` may be a false
  positive.  This invariant is property-tested for every implementation.
* ``size_in_bits()`` — the memory the structure actually occupies, used for
  bits-per-key (BPK) accounting in all experiments.
* ``probe_count`` — number of memory-probe-equivalent operations performed
  since the last ``reset_counters()``; the harness reports it alongside
  wall-clock throughput because in a pure-Python reproduction the probe
  count is the architecture-independent signal behind the paper's
  filter-throughput figures.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np

from repro.core.errors import FilterCorruptionError
from repro.telemetry.instrument import Instrumented

__all__ = ["RangeFilter", "as_key_array"]


def as_key_array(keys: Iterable[int] | np.ndarray) -> np.ndarray:
    """Normalise a key collection to a sorted, de-duplicated uint64 array."""
    arr = np.asarray(list(keys) if not isinstance(keys, np.ndarray) else keys)
    if arr.size and arr.dtype.kind not in "ui":
        raise TypeError(f"keys must be integers, got dtype {arr.dtype}")
    return np.unique(arr.astype(np.uint64, copy=False))


class RangeFilter(Instrumented, abc.ABC):
    """Abstract base class for approximate range-membership filters.

    Also an :class:`~repro.telemetry.instrument.Instrumented` structure:
    every filter exposes at least its size and probe count as pull-based
    telemetry gauges; subclasses with richer internal state (REncoder's
    load factor and stored-level span, the RBF's fetch counters) extend
    ``_TELEMETRY``.
    """

    #: Human-readable name used in result tables (overridden per class).
    name: str = "filter"

    #: Baseline gauges every filter can answer (see ``Instrumented``).
    _TELEMETRY = ("size_in_bits", "probe_count")

    def __init__(self, key_bits: int = 64) -> None:
        if not 1 <= key_bits <= 64:
            raise ValueError(f"key_bits must be in [1, 64], got {key_bits}")
        self.key_bits = key_bits

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def query_range(self, lo: int, hi: int) -> bool:
        """May the set contain any key in ``[lo, hi]`` (inclusive)?"""

    def query_point(self, key: int) -> bool:
        """May the set contain ``key``?  Default: degenerate range query."""
        return self.query_range(key, key)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def size_in_bits(self) -> int:
        """Occupied memory in bits."""

    @property
    def probe_count(self) -> int:
        """Memory-probe-equivalents since the last reset (0 if untracked)."""
        return 0

    def reset_counters(self) -> None:
        """Reset probe statistics.  Subclasses with counters override."""

    # ------------------------------------------------------------------
    # self-checks
    # ------------------------------------------------------------------
    def verify_invariants(
        self,
        keys: "Iterable[int] | np.ndarray | None" = None,
        *,
        sample: int = 32,
    ) -> bool:
        """Structural self-check; raises on violation, returns True.

        The base contract every filter can be held to: a sane size, and —
        when the source ``keys`` are available — the one-sided guarantee
        itself, probed on up to ``sample`` evenly spaced keys (no RNG, so
        the check is deterministic).  Subclasses with internal structure
        (REncoder's stored-level bitmap, load factor) extend this.

        Raises
        ------
        FilterCorruptionError
            If any invariant fails — the same typed error the persistence
            layer raises, so a caller recovering a deserialized filter
            handles "bytes were valid but the structure is wrong" and
            "bytes were corrupt" identically.
        """
        if self.size_in_bits() < 0:
            raise FilterCorruptionError(
                f"negative size_in_bits: {self.size_in_bits()}"
            )
        if keys is not None:
            arr = np.asarray(
                list(keys) if not isinstance(keys, np.ndarray) else keys
            )
            if arr.size:
                step = max(1, arr.size // max(1, sample))
                for key in arr[::step][:sample]:
                    if not self.query_point(int(key)):
                        raise FilterCorruptionError(
                            f"false negative on stored key {int(key)}: "
                            "one-sided guarantee violated"
                        )
        return True

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def bits_per_key(self, n_keys: int) -> float:
        """Size in bits divided by the number of keys it was built for."""
        if n_keys <= 0:
            raise ValueError(f"n_keys must be positive, got {n_keys}")
        return self.size_in_bits() / n_keys

    def _check_range(self, lo: int, hi: int) -> None:
        top = (1 << self.key_bits) - 1
        if not 0 <= lo <= hi <= top:
            raise ValueError(
                f"invalid range [{lo}, {hi}] for {self.key_bits}-bit keys"
            )

    def query_many(
        self,
        ranges: Sequence[tuple[int, int]],
        *,
        engine: "str | None" = None,
    ) -> list[bool]:
        """Answer a batch of range queries.

        Dispatches to the subclass's vectorised ``query_range_many`` fast
        path when one is defined (REncoder and its variants); otherwise
        falls back to the scalar loop.  Answers are identical either way
        — the fast path is property-tested to be bit-identical.

        ``engine`` selects the batch kernel backend on filters that
        support fused kernels (``supports_kernels``, the REncoder family
        — see :mod:`repro.core.kernels`); other filters ignore it.
        """
        fast = getattr(self, "query_range_many", None)
        if fast is not None:
            if getattr(self, "supports_kernels", False):
                return [bool(a) for a in fast(ranges, engine=engine)]
            return [bool(a) for a in fast(ranges)]
        return [self.query_range(int(lo), int(hi)) for lo, hi in ranges]

    def query_point_many(self, keys: Iterable[int]) -> Sequence[bool]:
        """Answer a batch of point queries.

        Subclasses with a vectorised path (REncoder family) override this
        and return a numpy boolean array; the default is the scalar loop.
        Callers should treat the result as an opaque boolean sequence.
        """
        return [self.query_point(int(k)) for k in keys]
