"""Standard Bloom filter — the LSM-tree's default filter (Figures 3–4).

A plain ``m``-bit Bloom filter over the keys themselves.  It answers point
queries natively; for range queries it does what an LSM-tree with only
Bloom filters must do: sequentially probe **every key in the range**
(Section V-D: "Bloom filter handles range queries by sequentially checking
the existence of all keys within the range"), which is exactly why range
filters exist.

Construction is vectorised; the number of hash functions defaults to the
standard optimum ``k = round(ln 2 · m / n)`` (clamped to [1, 16]).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.filters.base import RangeFilter, as_key_array
from repro.hashing.mix64 import HashFamily

__all__ = ["BloomFilter", "optimal_k"]


def optimal_k(bits: int, n_keys: int, cap: int = 16) -> int:
    """The FPR-optimal hash count ``round(ln2 · m/n)``, clamped to [1, cap]."""
    if n_keys <= 0:
        return 1
    k = int(round(np.log(2.0) * bits / n_keys))
    return max(1, min(cap, k))


class BloomFilter(RangeFilter):
    """Textbook Bloom filter with vectorised bulk construction."""

    name = "Bloom"

    def __init__(
        self,
        keys: Iterable[int] | np.ndarray,
        total_bits: int | None = None,
        *,
        bits_per_key: float = 16.0,
        key_bits: int = 64,
        k: int | None = None,
        seed: int = 0,
        max_range_probes: int = 1 << 20,
    ) -> None:
        super().__init__(key_bits)
        key_arr = as_key_array(keys)
        self.n_keys = int(key_arr.size)
        if total_bits is None:
            total_bits = max(64, int(round(bits_per_key * max(1, self.n_keys))))
        self.bits = max(64, (total_bits // 64) * 64)
        self.k = k if k is not None else optimal_k(self.bits, self.n_keys)
        self.seed = seed
        self.max_range_probes = max_range_probes
        self._array = np.zeros(self.bits // 64, dtype=np.uint64)
        self._family = HashFamily(self.k, self.bits, seed)
        self.probe_counter = 0
        if key_arr.size:
            positions = self._family.positions_array(key_arr)
            words = positions >> np.uint64(6)
            masks = np.uint64(1) << (positions & np.uint64(63))
            for i in range(self.k):
                np.bitwise_or.at(self._array, words[i], masks[i])

    def insert(self, key: int) -> None:
        """Insert one key (used by the memtable-flush path)."""
        for pos in self._family.positions(key):
            self._array[pos >> 6] |= np.uint64(1 << (pos & 63))
        self.n_keys += 1

    def query_point(self, key: int) -> bool:
        self._check_range(key, key)
        self.probe_counter += self.k
        for pos in self._family.positions(key):
            if not (int(self._array[pos >> 6]) >> (pos & 63)) & 1:
                return False
        return True

    def query_range(self, lo: int, hi: int) -> bool:
        """Probe every key in the range — the paper's baseline behaviour.

        Ranges wider than ``max_range_probes`` conservatively return True
        (an LSM-tree would not enumerate billions of candidate keys; it
        would just read the SSTable).
        """
        self._check_range(lo, hi)
        if hi - lo + 1 > self.max_range_probes:
            return True
        return any(self.query_point(key) for key in range(lo, hi + 1))

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bloom filter for the union of the two key sets (OR of arrays).

        Requires identical geometry (bits, k, seed); standard Bloom union
        semantics — never a false negative.
        """
        if (
            self.bits != other.bits
            or self.k != other.k
            or self.seed != other.seed
            or self.key_bits != other.key_bits
        ):
            raise ValueError("filters have incompatible geometry")
        merged = BloomFilter(
            [], self.bits, key_bits=self.key_bits, k=self.k, seed=self.seed
        )
        merged._array[:] = self._array | other._array
        merged.n_keys = self.n_keys + other.n_keys
        return merged

    @property
    def p1(self) -> float:
        """Load factor of the bit array."""
        return float(np.bitwise_count(self._array).sum()) / self.bits

    def size_in_bits(self) -> int:
        return self.bits

    @property
    def probe_count(self) -> int:
        return self.probe_counter

    def reset_counters(self) -> None:
        self.probe_counter = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BloomFilter(n={self.n_keys}, bits={self.bits}, k={self.k}, "
            f"p1={self.p1:.3f})"
        )
