"""Prefix Bloom filter (Section II-B) — fixed-prefix range filtering.

Inserts a single fixed-length prefix of each key into a Bloom filter.  A
range query is answered by probing every distinct prefix that covers the
range; with prefix length ``p``, a range of size ``R`` touches at most
``R / 2^(L-p) + 1`` prefixes (1–2 for the paper's workloads with
``p = 32``).  This is both a historical baseline and the second component
of Proteus, whose "NS" default is exactly a prefix Bloom filter with a
32-bit prefix.

The structure cannot distinguish keys that share the stored prefix, which
is why its FPR degrades on correlated workloads.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.filters.base import RangeFilter, as_key_array
from repro.filters.bloom import BloomFilter

__all__ = ["PrefixBloomFilter"]


class PrefixBloomFilter(RangeFilter):
    """Bloom filter over fixed-length key prefixes."""

    name = "PrefixBloom"

    def __init__(
        self,
        keys: Iterable[int] | np.ndarray,
        total_bits: int | None = None,
        *,
        prefix_len: int = 32,
        bits_per_key: float = 16.0,
        key_bits: int = 64,
        k: int | None = None,
        seed: int = 0,
        max_prefix_probes: int = 1 << 16,
    ) -> None:
        super().__init__(key_bits)
        if not 1 <= prefix_len <= key_bits:
            raise ValueError(
                f"prefix_len must be in [1, {key_bits}], got {prefix_len}"
            )
        key_arr = as_key_array(keys)
        self.n_keys = int(key_arr.size)
        self.prefix_len = prefix_len
        self._shift = key_bits - prefix_len
        if total_bits is None:
            total_bits = max(64, int(round(bits_per_key * max(1, self.n_keys))))
        prefixes = (
            np.unique(key_arr >> np.uint64(self._shift))
            if key_arr.size
            else key_arr
        )
        self.n_prefixes = int(prefixes.size)
        self.max_prefix_probes = max_prefix_probes
        self._bloom = BloomFilter(
            prefixes,
            total_bits,
            key_bits=key_bits,
            k=k,
            seed=seed,
        )
        # The inner Bloom sizes k by its own key count (the prefixes).
        if k is None and self.n_prefixes:
            self._bloom.k = self._bloom.k  # already computed from prefixes

    def query_range(self, lo: int, hi: int) -> bool:
        """Probe each prefix granule overlapping ``[lo, hi]``."""
        self._check_range(lo, hi)
        first = lo >> self._shift
        last = hi >> self._shift
        if last - first + 1 > self.max_prefix_probes:
            return True  # conservative, never a false negative
        return any(
            self._bloom.query_point(p) for p in range(first, last + 1)
        )

    def query_point(self, key: int) -> bool:
        self._check_range(key, key)
        return self._bloom.query_point(key >> self._shift)

    def size_in_bits(self) -> int:
        return self._bloom.size_in_bits()

    @property
    def probe_count(self) -> int:
        return self._bloom.probe_count

    def reset_counters(self) -> None:
        self._bloom.reset_counters()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PrefixBloomFilter(n={self.n_keys}, prefixes={self.n_prefixes}, "
            f"prefix_len={self.prefix_len}, bits={self.size_in_bits()})"
        )
