"""Bob Jenkins' lookup3 hash (scalar, faithful).

The REncoder paper states: "The hash functions we use are 32-bit Bob Hash
with random initial seeds."  This module implements the ``lookup3``
``hashlittle`` routine for byte strings, plus convenience wrappers hashing
64-bit integer keys.  It is used by tests as a reference family and is
selectable for any filter via ``hash_family="bob"``; the numpy-vectorised
family in :mod:`repro.hashing.mix64` is the performance default.

Reference: Bob Jenkins, "Hash functions for hash table lookup",
http://burtleburtle.net/bob/c/lookup3.c (public domain).
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF


def _rot(x: int, k: int) -> int:
    """Rotate a 32-bit value ``x`` left by ``k`` bits."""
    x &= _MASK32
    return ((x << k) | (x >> (32 - k))) & _MASK32


def _mix(a: int, b: int, c: int) -> tuple[int, int, int]:
    """lookup3 ``mix()``: reversibly mix three 32-bit values."""
    a = (a - c) & _MASK32
    a ^= _rot(c, 4)
    c = (c + b) & _MASK32
    b = (b - a) & _MASK32
    b ^= _rot(a, 6)
    a = (a + c) & _MASK32
    c = (c - b) & _MASK32
    c ^= _rot(b, 8)
    b = (b + a) & _MASK32
    a = (a - c) & _MASK32
    a ^= _rot(c, 16)
    c = (c + b) & _MASK32
    b = (b - a) & _MASK32
    b ^= _rot(a, 19)
    a = (a + c) & _MASK32
    c = (c - b) & _MASK32
    c ^= _rot(b, 4)
    b = (b + a) & _MASK32
    return a, b, c


def _final(a: int, b: int, c: int) -> tuple[int, int, int]:
    """lookup3 ``final()``: irreversibly finalize three 32-bit values."""
    c ^= b
    c = (c - _rot(b, 14)) & _MASK32
    a ^= c
    a = (a - _rot(c, 11)) & _MASK32
    b ^= a
    b = (b - _rot(a, 25)) & _MASK32
    c ^= b
    c = (c - _rot(b, 16)) & _MASK32
    a ^= c
    a = (a - _rot(c, 4)) & _MASK32
    b ^= a
    b = (b - _rot(a, 14)) & _MASK32
    c ^= b
    c = (c - _rot(b, 24)) & _MASK32
    return a, b, c


def bobhash32(data: bytes, seed: int = 0) -> int:
    """Hash a byte string to a 32-bit value (lookup3 ``hashlittle``).

    ``seed`` plays the role of ``initval``; the paper uses "random initial
    seeds" to derive independent hash functions from the same routine.
    """
    length = len(data)
    a = b = c = (0xDEADBEEF + length + (seed & _MASK32)) & _MASK32

    offset = 0
    remaining = length
    while remaining > 12:
        a = (a + int.from_bytes(data[offset : offset + 4], "little")) & _MASK32
        b = (b + int.from_bytes(data[offset + 4 : offset + 8], "little")) & _MASK32
        c = (c + int.from_bytes(data[offset + 8 : offset + 12], "little")) & _MASK32
        a, b, c = _mix(a, b, c)
        offset += 12
        remaining -= 12

    tail = data[offset:]
    if tail:
        padded = tail + b"\x00" * (12 - len(tail))
        a = (a + int.from_bytes(padded[0:4], "little")) & _MASK32
        b = (b + int.from_bytes(padded[4:8], "little")) & _MASK32
        c = (c + int.from_bytes(padded[8:12], "little")) & _MASK32
        a, b, c = _final(a, b, c)
    return c


def bobhash64(key: int, seed: int = 0) -> int:
    """Hash a 64-bit integer key to a 64-bit value using two lookup3 passes.

    The low 32 bits come from hashing the key's little-endian bytes with
    ``seed``; the high 32 bits use ``seed ^ 0x9E3779B9`` so the two halves
    are independent.
    """
    data = (key & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    lo = bobhash32(data, seed)
    hi = bobhash32(data, seed ^ 0x9E3779B9)
    return (hi << 32) | lo
