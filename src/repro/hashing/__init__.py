"""Hash functions used by every filter in the repository.

Two families are provided:

* :mod:`repro.hashing.bobhash` — a faithful scalar implementation of Bob
  Jenkins' ``lookup3`` hash, the function the paper's C++ implementation
  uses ("32-bit Bob Hash with random initial seeds").
* :mod:`repro.hashing.mix64` — a splitmix64-style finalizer family that is
  vectorisable with numpy and is the default for bulk filter construction.

Both families expose the same contract: a deterministic map from a 64-bit
integer (or numpy array of them) and a seed to a 64-bit hash value.  Filters
only require uniformity, so the two families are interchangeable; the
vectorised family is the default because pure-Python per-key hashing would
dominate build time.
"""

from repro.hashing.bobhash import bobhash32, bobhash64
from repro.hashing.mix64 import (
    HashFamily,
    mix64,
    mix64_array,
    seeds_for,
)

__all__ = [
    "bobhash32",
    "bobhash64",
    "HashFamily",
    "mix64",
    "mix64_array",
    "seeds_for",
]
