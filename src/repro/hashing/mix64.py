"""Vectorised 64-bit mixing hash family (splitmix64 finalizer).

Every filter in the repository needs many independent hash functions over
64-bit integer keys, both one key at a time (queries) and over large numpy
arrays (bulk construction).  The splitmix64 finalizer is a well-studied
full-avalanche permutation of the 64-bit space; seeding it by XORing the
input with a per-function random constant yields a family of independent
uniform hash functions, which is the only property Bloom-filter FPR analysis
requires.

The module exposes:

* :func:`mix64` / :func:`mix64_array` — the raw permutation for scalars and
  numpy arrays.
* :class:`HashFamily` — ``k`` seeded functions mapping keys to positions in
  ``[0, buckets)``, with scalar and vectorised entry points and a uniform
  probe-count statistic used by the bench harness.
"""

from __future__ import annotations

import numpy as np

_MASK64 = 0xFFFFFFFFFFFFFFFF

_C1 = 0xBF58476D1CE4E5B9
_C2 = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15


def mix64(x: int) -> int:
    """splitmix64 finalizer: bijective full-avalanche mix of a 64-bit int."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * _C1) & _MASK64
    x ^= x >> 27
    x = (x * _C2) & _MASK64
    x ^= x >> 31
    return x


def mix64_array(xs: np.ndarray) -> np.ndarray:
    """Vectorised :func:`mix64` over a ``uint64`` numpy array."""
    x = xs.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x ^= x >> np.uint64(30)
        x *= np.uint64(_C1)
        x ^= x >> np.uint64(27)
        x *= np.uint64(_C2)
        x ^= x >> np.uint64(31)
    return x


def seeds_for(k: int, seed: int) -> list[int]:
    """Derive ``k`` independent 64-bit seeds from a master ``seed``.

    Uses the splitmix64 sequence itself (add golden ratio, mix), the
    construction recommended for seeding PRNG families.
    """
    state = mix64(seed ^ 0x5851F42D4C957F2D)
    out = []
    for _ in range(k):
        state = (state + _GOLDEN) & _MASK64
        out.append(mix64(state))
    return out


class HashFamily:
    """``k`` independent hash functions mapping 64-bit keys to buckets.

    Parameters
    ----------
    k:
        Number of hash functions.
    buckets:
        Size of the target range; hashes are reduced modulo ``buckets``.
    seed:
        Master seed; two families with the same ``(k, buckets, seed)`` are
        identical, enabling reproducible experiments.
    """

    __slots__ = ("k", "buckets", "seed", "_seeds", "_seeds_arr")

    def __init__(self, k: int, buckets: int, seed: int = 0) -> None:
        if k < 1:
            raise ValueError(f"need at least one hash function, got k={k}")
        if buckets < 1:
            raise ValueError(f"need at least one bucket, got buckets={buckets}")
        self.k = k
        self.buckets = buckets
        self.seed = seed
        self._seeds = seeds_for(k, seed)
        self._seeds_arr = np.array(self._seeds, dtype=np.uint64)

    def positions(self, key: int) -> list[int]:
        """Bucket positions of ``key`` under all ``k`` functions."""
        key &= _MASK64
        return [mix64(key ^ s) % self.buckets for s in self._seeds]

    def position(self, key: int, i: int) -> int:
        """Bucket position of ``key`` under the ``i``-th function."""
        return mix64((key & _MASK64) ^ self._seeds[i]) % self.buckets

    def positions_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised positions: shape ``(k, len(keys))`` uint64 array."""
        keys = keys.astype(np.uint64, copy=False)
        out = np.empty((self.k, len(keys)), dtype=np.uint64)
        for i, s in enumerate(self._seeds_arr):
            out[i] = mix64_array(keys ^ s) % np.uint64(self.buckets)
        return out

    def rebucket(self, buckets: int) -> "HashFamily":
        """Same seeded family, different bucket count."""
        return HashFamily(self.k, buckets, self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashFamily(k={self.k}, buckets={self.buckets}, seed={self.seed})"
