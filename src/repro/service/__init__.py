"""Concurrent query-serving layer over the LSM filter stack.

The storage layer (PR 2) made the *data* hostile-proof; this package
makes the *read path* overload-proof.  A :class:`FilterService` serves
scalar and batch range queries over an :class:`~repro.storage.lsm.LSMTree`
through a worker thread pool, with the four production behaviours a
range filter needs when it sits in front of heavy traffic:

* **deadlines** (:mod:`~repro.service.deadline`) — each request carries
  a simulated-time budget; a query that blows it answers *degraded*
  (all-positive, never a false negative) instead of blocking;
* **admission control** (:mod:`~repro.service.admission`) — a bounded
  queue sheds load by rejecting new requests (with retry-after) or
  dropping the oldest, so the queue can't grow without bound;
* a **circuit breaker** (:mod:`~repro.service.breaker`) — storage reads
  that keep failing or stalling trip it open, and the service answers
  degraded immediately instead of feeding a sick backend;
* **epoch-pinned reads** — every query runs against an epoch-stamped
  snapshot of the tree, so background filter rebuilds and memtable
  flushes never race in-flight readers.

Everything degrades *one-sidedly*: any answer produced without actually
consulting the filters is ``True``.  The service can lie positively
under stress (costing downstream I/O), but a negative is always real.
"""

from repro.service.admission import AdmissionQueue, ServiceOverloadError
from repro.service.breaker import CircuitBreaker
from repro.service.deadline import Deadline, DeadlineExceededError, SimulatedClock
from repro.service.health import ServiceStats
from repro.service.service import FilterService, ServiceResponse

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceededError",
    "FilterService",
    "ServiceOverloadError",
    "ServiceResponse",
    "ServiceStats",
    "SimulatedClock",
]
