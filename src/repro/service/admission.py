"""Admission control: a bounded request queue with load shedding.

An unbounded queue turns overload into unbounded latency — every request
eventually gets served, long after its answer stopped mattering.  The
:class:`AdmissionQueue` caps the backlog and makes the overflow policy
explicit:

* ``"reject-new"`` — a full queue refuses the arriving request with
  :class:`ServiceOverloadError` carrying a retry-after hint.  Fairest to
  requests already queued; pushes backpressure to the client.
* ``"drop-oldest"`` — a full queue evicts its oldest entry to admit the
  new one.  The evicted request is *returned to the caller*, never
  silently discarded: the service resolves it with a degraded
  all-positive answer, so sheds are counted and one-sided like every
  other fallback.

The queue is also the service's shutdown point: ``close()`` wakes every
blocked worker, which then drain the remaining entries and exit on the
``None`` sentinel.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

__all__ = ["AdmissionQueue", "ServiceOverloadError", "SHED_POLICIES"]

SHED_POLICIES = ("reject-new", "drop-oldest")


class ServiceOverloadError(RuntimeError):
    """The service refused a request because its queue is full.

    ``retry_after_ns`` is the service's estimate (simulated time) of
    when capacity frees up — the client-visible backpressure signal, the
    moral equivalent of HTTP 429 + Retry-After.
    """

    def __init__(self, message: str, *, retry_after_ns: int = 0) -> None:
        super().__init__(message)
        self.retry_after_ns = retry_after_ns


class AdmissionQueue:
    """Bounded FIFO with a configurable shed policy (see module docs)."""

    def __init__(self, maxsize: int = 0, policy: str = "reject-new") -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0 (0 = unbounded), got {maxsize}")
        if policy not in SHED_POLICIES:
            raise ValueError(
                f"policy must be one of {SHED_POLICIES}, got {policy!r}"
            )
        self.maxsize = maxsize
        self.policy = policy
        self._items: deque[Any] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.rejected = 0
        self.dropped = 0
        self.admitted = 0

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def put(self, item: Any, *, retry_after_ns: int = 0) -> Any:
        """Admit ``item``; returns the evicted entry (or None).

        Raises :class:`ServiceOverloadError` when the queue is full
        under ``"reject-new"`` (with the given retry-after hint), and
        RuntimeError once the queue is closed.  Under ``"drop-oldest"``
        the evicted request is handed back so the caller can resolve it
        degraded — a shed must be answered, not vanished.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            evicted = None
            if self.maxsize and len(self._items) >= self.maxsize:
                if self.policy == "reject-new":
                    self.rejected += 1
                    raise ServiceOverloadError(
                        f"queue full ({self.maxsize} requests)",
                        retry_after_ns=retry_after_ns,
                    )
                evicted = self._items.popleft()
                self.dropped += 1
            self._items.append(item)
            self.admitted += 1
            self._cond.notify()
            return evicted

    def get(self, timeout: "float | None" = None) -> Any:
        """Block for the next entry; ``None`` means closed-and-drained.

        ``timeout`` (wall seconds) returns ``None`` on expiry as well —
        callers distinguish via :attr:`closed` if they care.
        """
        with self._cond:
            while not self._items and not self._closed:
                if not self._cond.wait(timeout):
                    return None
            if self._items:
                return self._items.popleft()
            return None  # closed and drained

    def drain(self) -> list[Any]:
        """Remove and return everything queued (used at shutdown)."""
        with self._cond:
            items = list(self._items)
            self._items.clear()
            return items

    def close(self) -> None:
        """Refuse new work and wake every blocked getter."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AdmissionQueue(depth={len(self)}/{self.maxsize or '∞'}, "
            f"policy={self.policy}, rejected={self.rejected}, "
            f"dropped={self.dropped})"
        )
