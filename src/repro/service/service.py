"""The filter service: concurrent queries with graceful degradation.

:class:`FilterService` serves point and range membership queries over an
:class:`~repro.storage.lsm.LSMTree` through a pool of worker threads.
Four production behaviours compose here (each implemented in its own
module, wired together by the worker loop):

1. **Deadlines** (:mod:`repro.service.deadline`) — every request carries
   a budget on the simulated clock, stamped at *submit* so queue wait
   counts.  A request that runs out of budget — before dispatch or
   mid-I/O via :meth:`~repro.storage.env.StorageEnv.deadline_scope` —
   resolves *degraded*: the all-positive answer, never a false negative.
2. **Admission control** (:mod:`repro.service.admission`) — a bounded
   queue sheds load by rejecting arrivals (``reject-new``) or evicting
   the oldest request (``drop-oldest``); evictions are resolved degraded,
   rejections raise :class:`ServiceOverloadError` with a retry-after.
3. **Circuit breaker** (:mod:`repro.service.breaker`) — when storage
   reads keep failing or blowing deadlines, the breaker opens and the
   service answers degraded *immediately* instead of letting every
   request burn its budget discovering the same outage.
4. **Epoch pinning** (:meth:`~repro.storage.lsm.LSMTree.pin_epoch`) —
   each query runs against an epoch-stamped snapshot of the tree, so
   background flushes, compactions and deferred filter rebuilds swap
   structures under live traffic without ever tearing a read.

The invariant tying all four together: **every path out of this service
is one-sided**.  A normal answer has the LSM's no-false-negative
guarantee; every degraded path (deadline, breaker, shed, fault,
shutdown) answers all-positive.  Degradation can only add false
positives — exactly the error the paper's filters are designed to trade
in — so overload changes latency and precision, never correctness.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

from repro.core.errors import DeadlineExceededError, TransientIOError
from repro.service.admission import (
    SHED_POLICIES,
    AdmissionQueue,
    ServiceOverloadError,
)
from repro.service.breaker import CircuitBreaker
from repro.service.deadline import Deadline
from repro.service.health import ServiceStats
from repro.storage.env import SimulatedClock
from repro.storage.lsm import LSMTree
from repro.telemetry.context import TraceContext
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracing import Span, get_tracer

__all__ = ["FilterService", "ServiceResponse"]

#: Default per-request budget: 50 simulated ms (50 plain second-level
#: reads at the default 1 ms ``io_cost_ns``) — roomy in calm weather,
#: quickly exhausted under slow-read faults or a deep backlog.
DEFAULT_DEADLINE_NS = 50_000_000

#: Request kinds the worker loop dispatches on.
_KINDS = ("range", "range_batch", "point")


@dataclass
class ServiceResponse:
    """One answered request.

    ``positive`` is the membership verdict — a bool for scalar requests,
    a list of bools (one per range) for batches.  ``degraded`` marks the
    all-positive fallback; ``reason`` says which path produced the
    answer: ``"ok"``, ``"deadline"``, ``"breaker-open"``, ``"fault"``,
    or ``"shed"``.  ``epoch`` is the tree epoch the query ran against
    (``-1`` when degradation skipped the tree entirely), and
    ``wall_ns`` / ``sim_ns`` are submit→resolve host time and shared
    simulated-clock time respectively.  ``retry_after_ns`` is the
    backpressure hint attached to backpressure-shaped degradations
    (``breaker-open``: remainder of the breaker's open window;
    shutdown ``shed``: one estimated queue-drain) — a router should
    not re-route to this replica before it elapses.
    """

    positive: "bool | list[bool]"
    degraded: bool
    reason: str
    epoch: int = -1
    wall_ns: int = 0
    sim_ns: int = 0
    retry_after_ns: int = 0
    #: The request's root span when the process tracer was enabled at
    #: submit time (None otherwise).
    trace: "Span | None" = None

    def __post_init__(self) -> None:
        if self.degraded:
            # The whole design hangs on this: a degraded answer is
            # all-positive by construction.
            bad = (
                not all(self.positive)
                if isinstance(self.positive, list)
                else not self.positive
            )
            if bad:
                raise ValueError(
                    "degraded responses must be all-positive "
                    f"(reason={self.reason!r})"
                )


class _Request:
    """Internal queue entry: payload + deadline + promise."""

    __slots__ = (
        "kind",
        "payload",
        "deadline",
        "future",
        "submitted_wall_ns",
        "submitted_sim_ns",
        "span",
    )

    def __init__(
        self,
        kind: str,
        payload: object,
        deadline: "Deadline | None",
        submitted_wall_ns: int,
        submitted_sim_ns: int,
    ) -> None:
        self.kind = kind
        self.payload = payload
        self.deadline = deadline
        self.future: "Future[ServiceResponse]" = Future()
        self.submitted_wall_ns = submitted_wall_ns
        self.submitted_sim_ns = submitted_sim_ns
        self.span: "Span | None" = None

    def degraded_positive(self) -> "bool | list[bool]":
        """The all-positive answer shaped like this request's result."""
        if self.kind == "range_batch":
            return [True] * len(self.payload)  # type: ignore[arg-type]
        return True


class FilterService:
    """Worker-pool query service over one LSM tree (see module docs).

    Parameters
    ----------
    lsm:
        The tree to serve.  Its env gains a :class:`SimulatedClock` if it
        doesn't already have one — deadlines and the breaker need it.
    workers:
        Worker-thread count.
    queue_depth:
        Admission-queue bound (0 = unbounded, i.e. no shedding — the
        bench's "unbounded baseline").
    shed_policy:
        ``"reject-new"`` or ``"drop-oldest"`` (see
        :mod:`repro.service.admission`).
    default_deadline_ns:
        Budget applied when a submit doesn't name one; ``None`` disables
        default deadlines (requests then only degrade via breaker/shed).
    breaker:
        Pass a preconfigured :class:`CircuitBreaker` to tune thresholds;
        by default one is built with its standard parameters.
    registry:
        The :class:`~repro.telemetry.registry.MetricsRegistry` all of the
        service's instruments land on.  A private one is created when
        omitted.  The LSM env's :class:`~repro.storage.env.IoStats` is
        re-homed onto it (:meth:`IoStats.bind`), so one ``metrics-dump``
        of ``service.registry`` shows service counters, latency
        histograms, storage I/O counters and live queue/breaker gauges
        together.
    kernel_backend:
        Batch kernel backend for the filters the storage tier consults
        (``"auto"`` / ``"numba"`` / ``"numpy"`` / ``"legacy"`` — see
        :mod:`repro.core.kernels`).  None (default) defers to the
        process default (``REPRO_KERNELS`` or ``auto``).  Worker threads
        share each filter's kernel; kernels keep per-thread scratch, so
        this is safe at any worker count.
    """

    def __init__(
        self,
        lsm: LSMTree,
        *,
        workers: int = 4,
        queue_depth: int = 64,
        shed_policy: str = "reject-new",
        default_deadline_ns: "int | None" = DEFAULT_DEADLINE_NS,
        breaker: "CircuitBreaker | None" = None,
        registry: "MetricsRegistry | None" = None,
        kernel_backend: "str | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if kernel_backend is not None:
            from repro.core import kernels

            kernels.resolve_backend(kernel_backend)  # validates the name
        self.kernel_backend = kernel_backend
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {shed_policy!r}"
            )
        if default_deadline_ns is not None and default_deadline_ns <= 0:
            raise ValueError(
                f"default_deadline_ns must be positive or None, "
                f"got {default_deadline_ns}"
            )
        self.lsm = lsm
        if lsm.env.clock is None:
            lsm.env.clock = SimulatedClock()
        self.clock: SimulatedClock = lsm.env.clock
        self.workers = workers
        self.default_deadline_ns = default_deadline_ns
        self.queue = AdmissionQueue(queue_depth, shed_policy)
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker(self.clock)
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = ServiceStats(registry=self.registry)
        lsm.env.stats.bind(self.registry)
        self._register_gauges()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._started_wall_ns = 0
        self._lock = threading.Lock()

    def _register_gauges(self) -> None:
        """Live queue/breaker/tree gauges on the service registry."""
        labels = {"component": "service"}
        reg = self.registry
        reg.gauge(
            "service_queue_depth", help="requests waiting", labels=labels
        ).set_fn(lambda: len(self.queue))
        reg.gauge(
            "service_breaker_open",
            help="1 when the breaker is open, 0.5 half-open, 0 closed",
            labels=labels,
        ).set_fn(
            lambda: {"closed": 0.0, "half-open": 0.5, "open": 1.0}[
                self.breaker.state
            ]
        )
        reg.gauge(
            "service_epoch", help="current LSM tree epoch", labels=labels
        ).set_fn(lambda: float(self.lsm.epoch))
        reg.gauge(
            "service_uptime_ns",
            help="wall time since start() while running",
            labels=labels,
        ).set_fn(lambda: float(self.uptime_ns()))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FilterService":
        """Spawn the worker pool (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            # Wall clock on purpose: uptime is host-side telemetry, not
            # simulated latency math.
            self._started_wall_ns = time.perf_counter_ns()  # lint: allow[wall-clock-in-simulated-path]
            for i in range(self.workers):
                t = threading.Thread(
                    target=self._worker_loop,
                    name=f"filter-service-{i}",
                    daemon=True,
                )
                t.start()
                self._threads.append(t)
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Shut down: close the queue, settle every promise, join workers.

        ``drain=True`` lets workers serve what's already queued before
        exiting; ``drain=False`` resolves the backlog degraded (reason
        ``"shed"``) immediately — fast shutdown, still no hung futures.
        """
        with self._lock:
            if not self._started:
                return
            self._started = False
        if not drain:
            for req in self.queue.drain():
                self._resolve_degraded(req, "shed")
        self.queue.close()
        for t in self._threads:
            t.join()
        self._threads.clear()
        # close() raced a final put, or a worker died mid-drain: settle
        # whatever is left rather than strand its futures.
        for req in self.queue.drain():
            self._resolve_degraded(req, "shed")

    def __enter__(self) -> "FilterService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_range(
        self,
        lo: int,
        hi: int,
        *,
        deadline_ns: "int | None" = None,
        ctx: "TraceContext | None" = None,
    ) -> "Future[ServiceResponse]":
        """Async range-membership query: is any live key in ``[lo, hi]``?"""
        if lo > hi:
            raise ValueError(f"invalid range [{lo}, {hi}]")
        return self._submit("range", (int(lo), int(hi)), deadline_ns, ctx)

    def submit_range_batch(
        self,
        ranges,
        *,
        deadline_ns: "int | None" = None,
        ctx: "TraceContext | None" = None,
    ) -> "Future[ServiceResponse]":
        """Async batch of range queries (one response, one bool each)."""
        pairs = [(int(lo), int(hi)) for lo, hi in ranges]
        for lo, hi in pairs:
            if lo > hi:
                raise ValueError(f"invalid range [{lo}, {hi}]")
        return self._submit("range_batch", pairs, deadline_ns, ctx)

    def submit_point(
        self,
        key: int,
        *,
        deadline_ns: "int | None" = None,
        ctx: "TraceContext | None" = None,
    ) -> "Future[ServiceResponse]":
        """Async point-membership query."""
        return self._submit("point", int(key), deadline_ns, ctx)

    def query_range(self, lo: int, hi: int, **kw) -> ServiceResponse:
        """Blocking :meth:`submit_range`."""
        return self.submit_range(lo, hi, **kw).result()

    def query_range_batch(self, ranges, **kw) -> ServiceResponse:
        """Blocking :meth:`submit_range_batch`."""
        return self.submit_range_batch(ranges, **kw).result()

    def query_point(self, key: int, **kw) -> ServiceResponse:
        """Blocking :meth:`submit_point`."""
        return self.submit_point(key, **kw).result()

    def _submit(
        self,
        kind: str,
        payload: object,
        deadline_ns: "int | None",
        ctx: "TraceContext | None" = None,
    ) -> "Future[ServiceResponse]":
        if not self._started:
            raise RuntimeError("service is not running (call start())")
        budget = (
            deadline_ns if deadline_ns is not None else self.default_deadline_ns
        )
        deadline = (
            Deadline.after(self.clock, budget) if budget is not None else None
        )
        req = _Request(
            kind,
            payload,
            deadline,
            time.perf_counter_ns(),  # lint: allow[wall-clock-in-simulated-path] — wall_ns telemetry
            self.clock.now_ns(),
        )
        tracer = get_tracer()
        if tracer.enabled:
            # Root span stamped at submit, so queue wait is on the trace.
            req.span = tracer.start_span(f"service.{kind}")
            req.span.set(
                payload=payload,
                deadline_ns=budget if budget is not None else "none",
            )
            if ctx is not None:
                # Propagated hop: record the caller's (trace, span) ids
                # and the budget the context says we inherited, so the
                # cross-replica tree re-assembles from ids alone.
                ctx.stamp(req.span)
                inherited = ctx.budget_ns(self.clock.now_ns())
                if inherited is not None:
                    req.span.set(budget_ns=inherited)
        self.stats.bump(submitted=1)
        try:
            evicted = self.queue.put(
                req, retry_after_ns=self._retry_after_ns()
            )
        except ServiceOverloadError:
            self.stats.bump(rejected=1)
            if req.span is not None:
                # A rejected request still yields a *closed* trace:
                # leaving the root span open here leaks one span per
                # shed request for the life of an overload storm.
                req.span.set(rejected=True)
                tracer.finish(req.span)
            raise
        if evicted is not None:
            self._resolve_degraded(evicted, "shed")
        return req.future

    def _retry_after_ns(self) -> int:
        """Backpressure hint: roughly one queue-drain of simulated I/O."""
        backlog = len(self.queue) + 1
        return (backlog * self.lsm.env.io_cost_ns) // max(1, self.workers)

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            req = self.queue.get()
            if req is None:  # closed and drained
                return
            try:
                self._serve(req)
            except BaseException as exc:  # last resort  # lint: allow[bare-except]
                # A worker must never die with a promise unsettled —
                # or with the request's root span left open (finish is
                # idempotent, so a span _resolve already closed is safe).
                if req.span is not None:
                    get_tracer().finish(req.span)
                if not req.future.done():
                    req.future.set_exception(exc)

    def _serve(self, req: _Request) -> None:
        span = req.span
        if span is None:
            self._serve_inner(req)
            return
        tracer = get_tracer()
        # The time between submit and this moment is queue wait; record
        # it as a closed child span so the trace shows it explicitly.
        wait = Span("queue.wait", span.start_wall_ns, span.start_sim_ns)
        tracer.finish(wait)
        span.children.append(wait)
        span.set(breaker=self.breaker.state, queue_depth=len(self.queue))
        with tracer.attach(span):
            self._serve_inner(req)

    def _serve_inner(self, req: _Request) -> None:
        # Expired while queued: degrade without touching storage.  Not a
        # breaker outcome — the backend did nothing wrong.
        if req.deadline is not None and req.deadline.expired(self.clock):
            self._resolve_degraded(req, "deadline")
            return
        if not self.breaker.allow():
            self._resolve_degraded(req, "breaker-open")
            return
        deadline_ns = (
            req.deadline.deadline_ns if req.deadline is not None else None
        )
        try:
            with self.lsm.pin_epoch() as view:
                with self.lsm.env.deadline_scope(deadline_ns):
                    positive = self._execute(req, view)
                epoch = view.epoch
        except DeadlineExceededError:
            # Budget burned mid-I/O — storage *is* implicated (slow
            # reads, retry storms), so the breaker hears about it.
            self.breaker.record_failure()
            self._resolve_degraded(req, "deadline")
            return
        except TransientIOError:
            # Retries exhausted inside the read path.
            self.breaker.record_failure()
            self._resolve_degraded(req, "fault")
            return
        self.breaker.record_success()
        self._resolve(
            req,
            ServiceResponse(
                positive=positive, degraded=False, reason="ok", epoch=epoch
            ),
        )

    def _execute(self, req: _Request, view) -> "bool | list[bool]":
        """Run the query against the pinned view."""
        if req.kind == "range":
            lo, hi = req.payload  # type: ignore[misc]
            return bool(self.lsm.range_query(lo, hi, view=view))
        if req.kind == "range_batch":
            rows = self.lsm.range_query_many(
                req.payload, view=view, engine=self.kernel_backend
            )
            return [bool(r) for r in rows]
        if req.kind == "point":
            found, _ = self.lsm.get(req.payload, view=view)  # type: ignore[arg-type]
            return found
        raise AssertionError(f"unknown request kind {req.kind!r}")

    # ------------------------------------------------------------------
    # resolution & accounting
    # ------------------------------------------------------------------
    _REASON_COUNTERS = {
        "ok": {"ok": 1},
        "deadline": {"degraded": 1, "deadline_expired": 1},
        "breaker-open": {"degraded": 1, "breaker_denied": 1},
        "fault": {"degraded": 1, "faults": 1},
        "shed": {"shed": 1},
    }

    def _resolve_degraded(self, req: _Request, reason: str) -> None:
        if reason == "breaker-open":
            retry_after_ns = self.breaker.retry_after_ns()
        elif reason == "shed":
            retry_after_ns = self._retry_after_ns()
        else:
            retry_after_ns = 0
        self._resolve(
            req,
            ServiceResponse(
                positive=req.degraded_positive(),
                degraded=True,
                reason=reason,
                retry_after_ns=retry_after_ns,
            ),
        )

    def _resolve(self, req: _Request, response: ServiceResponse) -> None:
        response.wall_ns = time.perf_counter_ns() - req.submitted_wall_ns  # lint: allow[wall-clock-in-simulated-path]
        response.sim_ns = self.clock.now_ns() - req.submitted_sim_ns
        self.stats.bump(completed=1, **self._REASON_COUNTERS[response.reason])
        self.stats.wall.record(response.wall_ns)
        self.stats.sim.record(response.sim_ns)
        if req.span is not None:
            req.span.set(
                reason=response.reason,
                degraded=response.degraded,
                epoch=response.epoch,
            )
            get_tracer().finish(req.span)
            response.trace = req.span
        req.future.set_result(response)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def uptime_ns(self) -> int:
        """Wall nanoseconds since :meth:`start` (0 while stopped)."""
        if not self._started:
            return 0
        return time.perf_counter_ns() - self._started_wall_ns  # lint: allow[wall-clock-in-simulated-path]

    def health(self) -> dict:
        """One-stop health snapshot (stats, breaker, queue, epochs).

        ``degraded_by_reason`` breaks the degraded total down by which
        path produced each all-positive answer; ``metrics`` is the full
        registry snapshot (service + storage + any registered filter
        gauges), the same content ``metrics-dump`` emits.
        """
        stats = self.stats.snapshot()
        durability = (
            self.lsm.durability_stats()
            if hasattr(self.lsm, "durability_stats")
            else None
        )
        return {
            "durability": durability,
            "running": self._started,
            "uptime_ns": self.uptime_ns(),
            "workers": self.workers,
            "clock_ns": self.clock.now_ns(),
            "stats": stats,
            "degraded_by_reason": {
                "deadline": stats["deadline_expired"],
                "breaker-open": stats["breaker_denied"],
                "fault": stats["faults"],
                "shed": stats["shed"],
            },
            "breaker": self.breaker.snapshot(),
            "queue": {
                "depth": len(self.queue),
                "maxsize": self.queue.maxsize,
                "policy": self.queue.policy,
                "admitted": self.queue.admitted,
                "rejected": self.queue.rejected,
                "dropped": self.queue.dropped,
            },
            "epoch": self.lsm.epoch,
            "active_pins": self.lsm.active_pins(),
            "metrics": self.registry.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FilterService(workers={self.workers}, "
            f"queue={len(self.queue)}/{self.queue.maxsize or '∞'}, "
            f"breaker={self.breaker.state})"
        )
