"""Circuit breaker around storage reads (closed / open / half-open).

When the storage backend goes bad — transient-fault storms, latency
spikes from the injector's slow reads — every query that touches it
burns its whole deadline before degrading.  The breaker caps that waste:
once the recent failure rate crosses the threshold it *opens*, and the
service answers degraded immediately (still all-positive, still
correct) without touching storage at all.  After ``open_ns`` of
simulated time it goes *half-open* and lets a few probe requests
through; all-success closes it, any failure re-opens it.

States and transitions (driven entirely by ``record_success`` /
``record_failure`` plus the simulated clock — no hidden timers)::

    closed ──(failure rate ≥ threshold over window)──▶ open
    open ──(open_ns elapsed)──▶ half-open
    half-open ──(all probes succeed)──▶ closed
    half-open ──(any probe fails)──▶ open
"""

from __future__ import annotations

import threading
from collections import deque

from repro.storage.env import SimulatedClock

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Failure-rate circuit breaker on the simulated clock.

    Parameters
    ----------
    clock:
        The shared simulated clock (same one the env charges I/O to).
    window:
        How many recent outcomes the failure rate is computed over.
    failure_threshold:
        Failure fraction (over the window) at which the breaker trips.
    min_samples:
        Don't trip before this many outcomes are in the window — one
        early fault shouldn't open a cold breaker.
    open_ns:
        Simulated time the breaker stays open before probing.
    half_open_probes:
        Number of consecutive successful probes needed to close again.
    """

    def __init__(
        self,
        clock: SimulatedClock,
        *,
        window: int = 32,
        failure_threshold: float = 0.5,
        min_samples: int = 8,
        open_ns: int = 200_000_000,
        half_open_probes: int = 2,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_samples < 1 or min_samples > window:
            raise ValueError(
                f"min_samples must be in [1, window], got {min_samples}"
            )
        if open_ns < 0:
            raise ValueError(f"open_ns must be >= 0, got {open_ns}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.clock = clock
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.open_ns = open_ns
        self.half_open_probes = half_open_probes
        self._lock = threading.Lock()
        self._state = "closed"
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._opened_at_ns = 0
        self._probes_issued = 0
        self._probes_succeeded = 0
        self.trips = 0
        self.denials = 0
        self.half_opens = 0
        self.closes = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (clock-refreshed)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        """open → half-open once the open window has elapsed (lock held)."""
        if (
            self._state == "open"
            and self.clock.now_ns() >= self._opened_at_ns + self.open_ns
        ):
            self._state = "half-open"
            self._probes_issued = 0
            self._probes_succeeded = 0
            self.half_opens += 1

    def allow(self) -> bool:
        """May the caller touch storage for this request?

        ``False`` means answer degraded right now.  In half-open, only
        ``half_open_probes`` callers are let through until their
        outcomes are known.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if self._state == "half-open":
                if self._probes_issued < self.half_open_probes:
                    self._probes_issued += 1
                    return True
                self.denials += 1
                return False
            self.denials += 1
            return False

    def record_success(self) -> None:
        """A storage-touching request completed within its budget."""
        with self._lock:
            if self._state == "half-open":
                self._probes_succeeded += 1
                if self._probes_succeeded >= self.half_open_probes:
                    self._state = "closed"
                    self._outcomes.clear()
                    self.closes += 1
                return
            if self._state == "closed":
                self._outcomes.append(False)

    def record_failure(self) -> None:
        """A storage-touching request failed (fault or deadline overrun)."""
        with self._lock:
            if self._state == "half-open":
                self._trip()
                return
            if self._state == "closed":
                self._outcomes.append(True)
                if len(self._outcomes) >= self.min_samples:
                    rate = sum(self._outcomes) / len(self._outcomes)
                    if rate >= self.failure_threshold:
                        self._trip()

    def _trip(self) -> None:
        """Open the breaker (lock held)."""
        self._state = "open"
        self._opened_at_ns = self.clock.now_ns()
        self._outcomes.clear()
        self.trips += 1

    def retry_after_ns(self) -> int:
        """Simulated time until the breaker will next admit traffic.

        While open this is the remainder of the open window — the
        honest backpressure hint for a ``breaker-open`` degraded
        response.  Closed or half-open, it is 0 (the caller may try
        immediately; half-open admission is probe-limited, not timed).
        """
        with self._lock:
            self._maybe_half_open()
            if self._state != "open":
                return 0
            return max(
                0, self._opened_at_ns + self.open_ns - self.clock.now_ns()
            )

    def force_open(self) -> None:
        """Trip the breaker manually (tests, drills, emergency levers)."""
        with self._lock:
            self._trip()

    def snapshot(self) -> dict:
        """State + counters for the health endpoint."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "trips": self.trips,
                "denials": self.denials,
                "transitions": {
                    "opened": self.trips,
                    "half_opened": self.half_opens,
                    "closed": self.closes,
                },
                "window_failures": sum(self._outcomes),
                "window_samples": len(self._outcomes),
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CircuitBreaker(state={self.state}, trips={self.trips})"
