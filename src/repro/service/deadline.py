"""Per-request deadlines on the simulated clock.

Latency in this codebase is *simulated*: the storage env charges each
second-level access, injected stall and retry backoff to a shared
:class:`~repro.storage.env.SimulatedClock`.  A :class:`Deadline` is an
absolute point on that clock.  Enforcement is cooperative and lives in
the env (:meth:`~repro.storage.env.StorageEnv.deadline_scope`): the
charge that pushes the clock past the deadline raises
:class:`~repro.core.errors.DeadlineExceededError` on the charging
thread, which the service converts into a *degraded all-positive*
answer.  The guarantee is therefore one-sided by construction — a
deadline can only ever make an answer *more* positive, never suppress a
real key.
"""

from __future__ import annotations

from repro.core.errors import DeadlineExceededError
from repro.storage.env import SimulatedClock

__all__ = ["Deadline", "DeadlineExceededError", "SimulatedClock"]


class Deadline:
    """An absolute simulated-time deadline for one request."""

    __slots__ = ("deadline_ns",)

    def __init__(self, deadline_ns: int) -> None:
        if deadline_ns < 0:
            raise ValueError(f"deadline_ns must be >= 0, got {deadline_ns}")
        self.deadline_ns = deadline_ns

    @classmethod
    def after(cls, clock: SimulatedClock, budget_ns: int) -> "Deadline":
        """Deadline ``budget_ns`` of simulated time from *now*.

        Stamped at submit time, so simulated time spent waiting in the
        admission queue counts against the budget — a request that
        queued through a storm is already late and should degrade fast,
        not add its backlog I/O on top.
        """
        if budget_ns <= 0:
            raise ValueError(f"budget_ns must be positive, got {budget_ns}")
        return cls(clock.now_ns() + budget_ns)

    def remaining_ns(self, clock: SimulatedClock) -> int:
        """Simulated nanoseconds left (0 when expired)."""
        return max(0, self.deadline_ns - clock.now_ns())

    def expired(self, clock: SimulatedClock) -> bool:
        """Has the clock passed this deadline?"""
        return clock.now_ns() > self.deadline_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(at={self.deadline_ns}ns)"
