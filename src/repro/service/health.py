"""Service observability: thread-safe counters and latency percentiles.

Under overload the *distribution* is the story — a mean hides the tail
that deadlines and shedding exist to protect.  :class:`LatencyRecorder`
keeps raw samples (simulation scale: tens of thousands of requests, so
no reservoir tricks needed) and answers p50/p99/p999;
:class:`ServiceStats` aggregates the outcome counters the acceptance
criteria talk about: every degraded or shed answer is counted somewhere,
never silent.
"""

from __future__ import annotations

import math
import threading

__all__ = ["LatencyRecorder", "ServiceStats", "percentile"]


def percentile(samples: "list[float]", q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of unsorted samples."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class LatencyRecorder:
    """Thread-safe latency sample sink with percentile queries."""

    def __init__(self) -> None:
        self._samples: list[int] = []
        self._lock = threading.Lock()

    def record(self, latency_ns: int) -> None:
        """Add one latency sample (nanoseconds)."""
        with self._lock:
            self._samples.append(latency_ns)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def percentile_ns(self, q: float) -> float:
        """Nearest-rank percentile of the recorded samples, in ns."""
        with self._lock:
            samples = list(self._samples)
        return percentile(samples, q)

    def summary_ms(self) -> dict:
        """p50/p99/p999 and max, in milliseconds (bench reporting)."""
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return {"p50_ms": 0.0, "p99_ms": 0.0, "p999_ms": 0.0, "max_ms": 0.0}
        return {
            "p50_ms": round(percentile(samples, 50) / 1e6, 3),
            "p99_ms": round(percentile(samples, 99) / 1e6, 3),
            "p999_ms": round(percentile(samples, 99.9) / 1e6, 3),
            "max_ms": round(max(samples) / 1e6, 3),
        }


class ServiceStats:
    """Outcome counters plus wall/simulated latency distributions.

    ``wall`` latencies are measured submit → resolve on the host clock
    (they include queue wait — the quantity shedding bounds); ``sim``
    latencies are the simulated-I/O time the request's execution
    witnessed on the shared clock.
    """

    _COUNTERS = (
        "submitted",
        "completed",
        "ok",
        "degraded",
        "deadline_expired",
        "breaker_denied",
        "shed",
        "rejected",
        "faults",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._COUNTERS:
            setattr(self, name, 0)
        self.wall = LatencyRecorder()
        self.sim = LatencyRecorder()

    def bump(self, **deltas: int) -> None:
        """Atomically add deltas to the named counters."""
        with self._lock:
            for name, delta in deltas.items():
                if name not in self._COUNTERS:
                    raise AttributeError(
                        f"unknown ServiceStats counter {name!r}"
                    )
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> dict:
        """All counters plus wall-latency percentiles, as one dict."""
        with self._lock:
            out = {name: getattr(self, name) for name in self._COUNTERS}
        out.update(self.wall.summary_ms())
        answered = out["completed"]
        out["degraded_rate"] = (
            round((out["degraded"] + out["shed"]) / answered, 4)
            if answered
            else 0.0
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        snap = self.snapshot()
        return (
            f"ServiceStats(completed={snap['completed']}, "
            f"ok={snap['ok']}, degraded={snap['degraded']}, "
            f"shed={snap['shed']}, rejected={snap['rejected']})"
        )
