"""Service observability: thread-safe counters and latency percentiles.

Under overload the *distribution* is the story — a mean hides the tail
that deadlines and shedding exist to protect.  :class:`LatencyRecorder`
keeps a bounded reservoir of samples (deterministic, seeded — see
:class:`~repro.telemetry.registry.Reservoir`) and answers p50/p99/p999;
:class:`ServiceStats` aggregates the outcome counters the acceptance
criteria talk about: every degraded or shed answer is counted somewhere,
never silent.

Both are thin views over the telemetry substrate (DESIGN.md §9):
``percentile`` is re-exported from :mod:`repro.telemetry.registry`, and
``ServiceStats`` counters are registry :class:`Counter` instruments
named ``service_<name>``, so a ``metrics-dump`` of the service registry
exposes the same numbers the bench harness reads.
"""

from __future__ import annotations

import threading

from repro.telemetry.registry import (
    Histogram,
    MetricsRegistry,
    Reservoir,
    percentile,
)

__all__ = ["LatencyRecorder", "ServiceStats", "percentile"]

#: Reservoir size for latency recorders.  Percentile estimates over a
#: uniform sample of this many observations are indistinguishable from
#: exact ones at bench scale, and memory stays O(1) per recorder
#: regardless of how long the service runs.
DEFAULT_SAMPLE_CAP = 4096


class LatencyRecorder:
    """Thread-safe latency sample sink with percentile queries.

    Keeps at most ``cap`` samples via deterministic (seeded) uniform
    reservoir sampling; below ``cap`` observations the behaviour is
    byte-identical to the old keep-everything recorder.  ``len()``
    reports the *total* number of observations (not the retained
    sample count), and ``max`` stays exact regardless of eviction.

    ``histogram`` optionally mirrors every sample into a registry
    :class:`~repro.telemetry.registry.Histogram` so the distribution is
    also visible through Prometheus exposition.
    """

    def __init__(
        self,
        cap: int = DEFAULT_SAMPLE_CAP,
        seed: int = 0,
        histogram: "Histogram | None" = None,
    ) -> None:
        self._reservoir = Reservoir(cap=cap, seed=seed)
        self._lock = threading.Lock()
        self._histogram = histogram

    def record(self, latency_ns: int) -> None:
        """Add one latency sample (nanoseconds)."""
        with self._lock:
            self._reservoir.add(latency_ns)
        if self._histogram is not None:
            self._histogram.observe(latency_ns)

    def __len__(self) -> int:
        """Total observations recorded (not the retained sample count)."""
        with self._lock:
            return self._reservoir.count

    def percentile_ns(self, q: float) -> float:
        """Nearest-rank percentile of the retained samples, in ns."""
        with self._lock:
            return self._reservoir.percentile(q)

    def summary_ms(self) -> dict:
        """p50/p99/p999 and max, in milliseconds (bench reporting)."""
        with self._lock:
            if not self._reservoir.count:
                return {
                    "p50_ms": 0.0,
                    "p99_ms": 0.0,
                    "p999_ms": 0.0,
                    "max_ms": 0.0,
                }
            return {
                "p50_ms": round(self._reservoir.percentile(50) / 1e6, 3),
                "p99_ms": round(self._reservoir.percentile(99) / 1e6, 3),
                "p999_ms": round(self._reservoir.percentile(99.9) / 1e6, 3),
                "max_ms": round(self._reservoir.max_value / 1e6, 3),
            }


class ServiceStats:
    """Outcome counters plus wall/simulated latency distributions.

    ``wall`` latencies are measured submit → resolve on the host clock
    (they include queue wait — the quantity shedding bounds); ``sim``
    latencies are the simulated-I/O time the request's execution
    witnessed on the shared clock.

    Counters are registry instruments named ``service_<counter>``; by
    default the stats object owns a private
    :class:`~repro.telemetry.registry.MetricsRegistry`, and the service
    passes its shared one in so counters and latency histograms land in
    the same exposition as the storage and filter metrics.  The public
    surface is unchanged: read counters as attributes
    (``stats.completed``), mutate through :meth:`bump`.
    """

    _COUNTERS = (
        "submitted",
        "completed",
        "ok",
        "degraded",
        "deadline_expired",
        "breaker_denied",
        "shed",
        "rejected",
        "faults",
    )

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self._lock = threading.Lock()
        self._registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self._registry.counter(
                f"service_{name}",
                help=f"ServiceStats.{name}",
                labels={"component": "service"},
            )
            for name in self._COUNTERS
        }
        self.wall = LatencyRecorder(
            histogram=self._registry.histogram(
                "service_latency_wall_ns",
                help="submit-to-resolve wall latency (incl. queue wait)",
                labels={"component": "service"},
            )
        )
        self.sim = LatencyRecorder(
            histogram=self._registry.histogram(
                "service_latency_sim_ns",
                help="simulated-I/O latency witnessed by the request",
                labels={"component": "service"},
            )
        )

    def __getattr__(self, name: str):
        # Only consulted when normal lookup fails — i.e. for counters.
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def registry(self) -> MetricsRegistry:
        """The registry backing these counters and histograms."""
        return self._registry

    def bump(self, **deltas: int) -> None:
        """Atomically add deltas to the named counters."""
        with self._lock:
            for name, delta in deltas.items():
                counter = self._counters.get(name)
                if counter is None:
                    raise AttributeError(
                        f"unknown ServiceStats counter {name!r}"
                    )
                counter.inc(delta)

    def snapshot(self) -> dict:
        """All counters plus wall-latency percentiles, as one dict."""
        with self._lock:
            out = {name: c.value for name, c in self._counters.items()}
        out.update(self.wall.summary_ms())
        answered = out["completed"]
        out["degraded_rate"] = (
            round((out["degraded"] + out["shed"]) / answered, 4)
            if answered
            else 0.0
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        snap = self.snapshot()
        return (
            f"ServiceStats(completed={snap['completed']}, "
            f"ok={snap['ok']}, degraded={snap['degraded']}, "
            f"shed={snap['shed']}, rejected={snap['rejected']})"
        )
