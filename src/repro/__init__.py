"""REncoder: a space-time efficient range filter with local encoder.

A from-scratch Python reproduction of the ICDE 2023 paper, including:

* the REncoder family (:class:`REncoder`, :class:`REncoderSS`,
  :class:`REncoderSE`, :class:`REncoderPO`, :class:`TwoStageREncoder`)
  built on Bitmap Trees and the Range Bloom Filter;
* every baseline of the evaluation — SuRF (on a LOUDS succinct trie),
  Rosetta, SNARF, Proteus/ProteusNS, standard and prefix Bloom filters,
  plus ARF as a related-work extra;
* the storage substrates of the three use cases — an LSM-tree, a B+tree
  with leaf filters, and an R-tree with Z-order leaf filters — over a
  simulated two-level store;
* the Section IV analysis (error bounds, space solver, independence test)
  and a bench harness regenerating every table and figure.

Quickstart::

    import numpy as np
    from repro import REncoder

    keys = np.random.default_rng(0).integers(0, 1 << 64, 10_000,
                                             dtype=np.uint64)
    filt = REncoder(keys, bits_per_key=18)
    filt.query_range(123, 456)      # False => certainly empty
"""

from repro.core.rencoder import DEFAULT_RMAX, REncoder
from repro.core.serialize import dumps, loads
from repro.core.two_stage import (
    TwoStageREncoder,
    double_to_key,
    float_to_key,
    key_to_double,
    key_to_float,
)
from repro.core.variants import REncoderPO, REncoderSE, REncoderSS
from repro.filters.spatial import ZOrderRangeFilter
from repro.filters.arf import AdaptiveRangeFilter
from repro.filters.base import RangeFilter
from repro.filters.bloom import BloomFilter
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.filters.proteus import Proteus, ProteusNS
from repro.filters.rosetta import Rosetta
from repro.filters.snarf import Snarf
from repro.filters.surf import SuRF
from repro.storage.btree import BPlusTree
from repro.storage.env import StorageEnv
from repro.storage.lsm import LSMTree
from repro.storage.rtree import RTree

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_RMAX",
    "REncoder",
    "REncoderPO",
    "REncoderSE",
    "REncoderSS",
    "TwoStageREncoder",
    "dumps",
    "loads",
    "double_to_key",
    "float_to_key",
    "key_to_double",
    "key_to_float",
    "ZOrderRangeFilter",
    "AdaptiveRangeFilter",
    "RangeFilter",
    "BloomFilter",
    "PrefixBloomFilter",
    "Proteus",
    "ProteusNS",
    "Rosetta",
    "Snarf",
    "SuRF",
    "BPlusTree",
    "StorageEnv",
    "LSMTree",
    "RTree",
    "__version__",
]
