"""FilterCluster: the one-object facade over shards, replicas and router.

Builds the whole tier from a topology description — N shards × R
replicas, each an independent :class:`~repro.cluster.replica.Replica`
(own storage env, own seeded fault injector, shared simulated clock) —
wires them to a :class:`~repro.cluster.router.ClusterRouter`, and owns
the two pieces the router deliberately doesn't:

* **the write path with hinted handoff.**  A put fans out to every
  replica of the owning shard(s); a replica that is crashed or
  partitioned gets the write queued as a *hint* instead.  Hints are
  replayed into the replica when it comes back — after recovery but
  before it serves — so a reborn replica never answers from a filter
  that lacks keys the cluster accepted.  That closed loop is what lets
  the chaos suite assert **zero false negatives** across crash/restart
  cycles: every accepted key is either in a replica's tree or in its
  hint queue, and the hint queue drains before the tree serves.
* **live resharding.**  ``migrate_segment`` runs the two-epoch protocol
  from :class:`~repro.cluster.topology.ClusterMap`: begin (dual
  ownership — reads OR both owners, writes hit both), backfill the
  destination from a reachable source replica, commit.  ``add_shard``
  spins up a new shard's replicas, registers them with the router, and
  migrates over exactly the segments the ring reassigns — all while
  queries keep flowing.

Replica fault-injector seeds are derived per replica with the project's
splitmix64 mix, so the fleet's fault sequences are decorrelated but the
whole cluster is a pure function of one seed.
"""

from __future__ import annotations

import logging
import threading

from repro.cluster.repair import AntiEntropy
from repro.cluster.replica import Replica, ReplicaUnreachableError
from repro.cluster.router import ClusterRouter
from repro.cluster.topology import ClusterMap
from repro.core.errors import TornAppendError, TransientIOError
from repro.hashing.mix64 import mix64
from repro.storage.env import SimulatedClock
from repro.telemetry.context import TraceStore, get_trace_store
from repro.telemetry.federation import FederatedRegistry
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.slo import SLOEngine, SLOSpec, default_cluster_slos
from repro.telemetry.tracing import get_tracer

__all__ = ["FilterCluster"]

_MASK64 = (1 << 64) - 1

_LOG = logging.getLogger(__name__)

#: Default per-replica hinted-handoff bound.  A replica that stays down
#: long enough to overflow it starts losing its *oldest* hints (counted
#: and logged) — the sibling replicas still hold those writes, and
#: anti-entropy re-converges the laggard after restart.
DEFAULT_HINT_CAP = 50_000


def _replica_seed(base_seed: int, shard_id: int, replica_id: int) -> int:
    """Decorrelated per-replica injector seed from the cluster seed."""
    return mix64(
        (base_seed & _MASK64) ^ mix64(((shard_id + 1) << 16) | (replica_id + 1))
    )


class FilterCluster:
    """A sharded, replicated filter tier behind one query surface.

    Parameters
    ----------
    n_shards, replicas_per_shard:
        Initial topology.
    filter_factory:
        Per-SSTable filter builder shared by every replica's tree
        (factories are plain callables, so sharing is safe), or None
        for filterless trees.
    seed:
        Cluster seed: ring tokens and every replica's fault-injector
        seed derive from it.
    segment_bits, vnodes:
        Domain partitioning knobs (see :class:`ClusterMap`).
    fault_profile:
        :class:`~repro.storage.faults.FaultInjector` probabilities
        applied to every replica (the bench's named profiles).
    hedging:
        Router hedging on/off (off = the bench's unprotected baseline).
    durability:
        Build every replica with a WAL + checkpoints
        (:class:`~repro.durability.durable_lsm.DurableLSM`); restarts
        then recover acknowledged writes, and :meth:`anti_entropy`
        repairs quarantined/divergent replicas.
    checkpoint_every:
        Per-replica auto-checkpoint cadence in writes (durable only).
    hint_cap:
        Per-replica hinted-handoff bound; overflow drops the oldest
        hints (``hinted_handoff_dropped`` counts them).  0 = unbounded.
    registry:
        Metrics registry shared with the router.
    replica_kwargs:
        Extra keywords for every :class:`Replica` (workers,
        queue_depth, default_deadline_ns, memtable_capacity, ...).
    """

    def __init__(
        self,
        n_shards: int = 2,
        replicas_per_shard: int = 2,
        filter_factory=None,
        *,
        seed: int = 0,
        segment_bits: int = 6,
        vnodes: int = 64,
        fault_profile: "dict | None" = None,
        hedging: bool = True,
        durability: bool = False,
        checkpoint_every: int = 0,
        hint_cap: int = DEFAULT_HINT_CAP,
        registry: "MetricsRegistry | None" = None,
        router_kwargs: "dict | None" = None,
        trace_store: "TraceStore | None" = None,
        **replica_kwargs,
    ) -> None:
        if n_shards < 1 or replicas_per_shard < 1:
            raise ValueError("need at least one shard and one replica")
        if hint_cap < 0:
            raise ValueError(f"hint_cap must be >= 0, got {hint_cap}")
        self.seed = seed
        self.filter_factory = filter_factory
        self.fault_profile = dict(fault_profile or {})
        self.replicas_per_shard = replicas_per_shard
        self.durability = bool(durability)
        self.hint_cap = hint_cap
        self._replica_kwargs = dict(replica_kwargs)
        if self.durability:
            self._replica_kwargs.setdefault("durability", True)
            self._replica_kwargs.setdefault(
                "checkpoint_every", checkpoint_every
            )
        self.clock = SimulatedClock()
        self.map = ClusterMap(
            range(n_shards),
            segment_bits=segment_bits,
            vnodes=vnodes,
            seed=seed,
        )
        self.replicas: dict[int, list[Replica]] = {
            sid: [
                self._build_replica(sid, rid)
                for rid in range(replicas_per_shard)
            ]
            for sid in range(n_shards)
        }
        rk = dict(router_kwargs or {})
        rk.setdefault("trace_store", trace_store)
        self.router = ClusterRouter(
            self.map,
            self.replicas,
            clock=self.clock,
            registry=registry,
            hedging=hedging,
            **rk,
        )
        self.registry = self.router.registry
        self.trace_store = self.router.trace_store
        #: One labeled namespace over the router registry and every
        #: replica's own registry (DESIGN.md §14).  Replica label sets
        #: are callables so the `state` label tracks health live and a
        #: restarted replica re-homes without double-counting (the
        #: Replica owns its registry across service incarnations).
        self.federation = FederatedRegistry()
        self.federation.attach(
            "router", self.router.registry, {"scope": "router"}
        )
        for sid, reps in self.replicas.items():
            for rep in reps:
                self._federate_replica(sid, rep)
        #: Burn-rate alerting; off until :meth:`enable_slo`.
        self.slo: "SLOEngine | None" = None
        #: replica name -> writes it missed while unreachable.
        self._hints: dict[str, list[tuple[int, object]]] = {}
        # Serialises writes against hint replay (heal/restart): a write
        # observes either "unreachable → hinted" or "reachable → stored",
        # never a replica that came back between the check and the hint.
        self._hint_lock = threading.Lock()
        self._c_hints_dropped = self.registry.counter(
            "hinted_handoff_dropped",
            help="hinted writes dropped to the per-replica cap",
            labels={"component": "cluster"},
        )
        self._repairer = AntiEntropy(self)
        self.keys_accepted = 0

    def _build_replica(self, shard_id: int, replica_id: int) -> Replica:
        return Replica(
            shard_id,
            replica_id,
            self.filter_factory,
            clock=self.clock,
            seed=_replica_seed(self.seed, shard_id, replica_id),
            fault_profile=self.fault_profile,
            **self._replica_kwargs,
        )

    def _federate_replica(self, shard_id: int, rep: Replica) -> None:
        self.federation.attach(
            rep.name,
            rep.registry,
            lambda r=rep, s=shard_id: {
                "scope": "replica",
                "shard": str(s),
                "replica": r.name,
                "state": r.health.state,
            },
        )

    def _store(self) -> "TraceStore | None":
        """The trace store routed traces land in (if tracing is live)."""
        store = self.trace_store
        return store if store is not None else get_trace_store()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FilterCluster":
        """Start every replica (idempotent)."""
        for reps in self.replicas.values():
            for rep in reps:
                if not rep.crashed:
                    rep.start()
        return self

    def stop(self) -> None:
        """Gracefully stop every live replica."""
        for reps in self.replicas.values():
            for rep in reps:
                if not rep.crashed:
                    rep.stop()

    def __enter__(self) -> "FilterCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # write path (hinted handoff)
    # ------------------------------------------------------------------
    def _write(self, rep: Replica, key: int, value) -> None:
        with self._hint_lock:
            try:
                rep.put(key, value)
                return
            except ReplicaUnreachableError:
                pass
            except TornAppendError:
                # The replica's WAL tore twice in a row: its write path
                # is broken and the put was NOT acknowledged there.
                # Treat it like a real system treats a log-write failure
                # — panic the replica — which routes it through the
                # restart + hint-replay loop that guarantees a reborn
                # replica holds every accepted key before serving.
                rep.crash()
            self._hint(rep, key, value)

    def _hint(self, rep: Replica, key: int, value) -> None:
        """Queue a missed write, dropping the oldest past the cap.

        Caller holds ``_hint_lock``.
        """
        hints = self._hints.setdefault(rep.name, [])
        hints.append((key, value))
        if self.hint_cap and len(hints) > self.hint_cap:
            overflow = len(hints) - self.hint_cap
            del hints[:overflow]
            self._c_hints_dropped.inc(overflow)
            _LOG.warning(
                "hint queue for %s at cap %d; dropped %d oldest write(s)",
                rep.name, self.hint_cap, overflow,
            )

    def put(self, key: int, value=None) -> None:
        """Store ``key`` on every replica of its owning shard(s).

        During a migration the segment has two owners and both get the
        write — dual writes are what make the commit safe.
        """
        key = int(key)
        segment = self.map.segment_of(key)
        for shard in self.map.owners(segment):
            for rep in self.replicas[shard]:
                self._write(rep, key, value)
        self.keys_accepted += 1

    def load(self, keys) -> int:
        """Bulk :meth:`put` (value = low byte of the key); returns count."""
        n = 0
        for k in keys:
            self.put(int(k), int(k) & 0xFF)
            n += 1
        return n

    def flush(self) -> None:
        """Flush every reachable replica's memtable (bench setup aid)."""
        for reps in self.replicas.values():
            for rep in reps:
                if rep.reachable():
                    rep.lsm.flush()

    def hint_backlog(self) -> dict[str, int]:
        """Pending hinted writes per replica (observability)."""
        with self._hint_lock:
            return {name: len(h) for name, h in self._hints.items() if h}

    # ------------------------------------------------------------------
    # SLOs (burn-rate alerting on the routed query stream)
    # ------------------------------------------------------------------
    def enable_slo(
        self, specs: "list[SLOSpec] | None" = None, **engine_kwargs
    ) -> SLOEngine:
        """Attach an :class:`SLOEngine` fed by every routed query.

        Availability counts degraded merges as bad; latency is the
        routed call's *simulated* duration; the zero-false-negative
        budget is fed by :meth:`record_truth` (only a harness that
        knows ground truth can observe an FN).
        """
        engine = SLOEngine(self.clock, registry=self.registry, **engine_kwargs)
        for spec in specs if specs is not None else default_cluster_slos():
            engine.add(spec)
        self.slo = engine
        return engine

    def _observe_slo(self, resp, elapsed_ns: int):
        slo = self.slo
        if slo is not None:
            bad = 1 if resp.degraded else 0
            slo.record("availability", good=1 - bad, bad=bad)
            slo.record_latency("p99-latency", elapsed_ns)
            slo.evaluate()
        return resp

    def record_truth(self, expected_positive: bool, got_positive: bool) -> None:
        """Ground-truth verdict check from a harness that knows the keys.

        A false negative (expected positive, answered negative) burns
        the entire zero-false-negative budget instantly.
        """
        if self.slo is None:
            return
        fn = bool(expected_positive) and not got_positive
        self.slo.record(
            "zero-false-negative", good=0 if fn else 1, bad=1 if fn else 0
        )
        self.slo.evaluate()

    # ------------------------------------------------------------------
    # read path (delegated to the router)
    # ------------------------------------------------------------------
    def query_range(self, lo: int, hi: int, **kw):
        """Routed scalar range query (see :meth:`ClusterRouter.query_range`)."""
        t0 = self.clock.now_ns()
        resp = self.router.query_range(lo, hi, **kw)
        return self._observe_slo(resp, self.clock.now_ns() - t0)

    def query_range_many(self, ranges, **kw):
        """Routed batch of range queries, one verdict per range."""
        t0 = self.clock.now_ns()
        resp = self.router.query_range_many(ranges, **kw)
        return self._observe_slo(resp, self.clock.now_ns() - t0)

    def query_point(self, key: int, **kw):
        """Routed point query for ``key``."""
        t0 = self.clock.now_ns()
        resp = self.router.query_point(key, **kw)
        return self._observe_slo(resp, self.clock.now_ns() - t0)

    def probe_all(self):
        """Probe every replica once (drives down → recovering → healthy)."""
        return self.router.probe_all()

    # ------------------------------------------------------------------
    # fault control plane (driven by chaos and by tests)
    # ------------------------------------------------------------------
    def replica(self, shard_id: int, replica_id: int) -> Replica:
        """The addressed :class:`Replica` (chaos/test convenience)."""
        return self.replicas[shard_id][replica_id]

    def crash_replica(self, shard_id: int, replica_id: int) -> None:
        """Hard-kill a replica: backlog resolves degraded, then silence."""
        self.replica(shard_id, replica_id).crash()

    def restart_replica(
        self, shard_id: int, replica_id: int, *, rebuild: str = "immediate"
    ) -> dict:
        """Reboot a crashed replica, replaying its hinted writes first."""
        rep = self.replica(shard_id, replica_id)
        with self._hint_lock:
            replay = self._hints.pop(rep.name, [])
            tracer, store = get_tracer(), self._store()
            if not tracer.enabled or store is None:
                return rep.restart(rebuild=rebuild, replay=replay)
            # A hint replay is an ops event worth keeping whole: the
            # trace carries the recovery plus every replayed WAL append.
            ctx = store.new_context()
            with tracer.span("cluster.hint_replay") as root:
                ctx.stamp(root)
                root.set(replica=rep.name, shard=shard_id, hints=len(replay))
                report = rep.restart(rebuild=rebuild, replay=replay)
            store.record(
                ctx, root, interesting=bool(replay), kind="hint_replay"
            )
            return report

    def partition_replica(self, shard_id: int, replica_id: int) -> None:
        """Cut a replica off the network (process alive, unreachable)."""
        self.replica(shard_id, replica_id).set_partitioned(True)

    def heal_replica(self, shard_id: int, replica_id: int) -> None:
        """Reconnect a partitioned replica, delivering its hints first.

        The hints go directly into the tree while the replica is still
        partitioned from the *router* — the control plane models the
        peer hand-off that accompanies the heal — so no query can reach
        the replica before it has every accepted key.
        """
        rep = self.replica(shard_id, replica_id)
        with self._hint_lock:
            replay = self._hints.pop(rep.name, [])
            tracer, store = get_tracer(), self._store()
            if not tracer.enabled or store is None:
                for key, value in replay:
                    rep.lsm.put(key, value)
                rep.set_partitioned(False)
                return
            ctx = store.new_context()
            with tracer.span("cluster.hint_replay") as root:
                ctx.stamp(root)
                root.set(replica=rep.name, shard=shard_id, hints=len(replay))
                for key, value in replay:
                    rep.lsm.put(key, value)
                rep.set_partitioned(False)
            store.record(
                ctx, root, interesting=bool(replay), kind="hint_replay"
            )

    def slow_replica(
        self,
        shard_id: int,
        replica_id: int,
        slow_read_p: float,
        slow_read_ns: "int | None" = None,
    ) -> float:
        """Degrade (or restore) a replica's storage latency in place.

        Returns the previous ``slow_read_p`` so chaos can undo itself.
        """
        inj = self.replica(shard_id, replica_id).injector
        previous = inj.slow_read_p
        inj.slow_read_p = slow_read_p
        if slow_read_ns is not None:
            inj.slow_read_ns = slow_read_ns
        return previous

    # ------------------------------------------------------------------
    # durability control plane
    # ------------------------------------------------------------------
    def checkpoint_all(self) -> "dict[str, str | None]":
        """Checkpoint every live durable replica; name -> blob written."""
        out: "dict[str, str | None]" = {}
        for reps in self.replicas.values():
            for rep in reps:
                if rep.durability and not rep.crashed:
                    out[rep.name] = rep.checkpoint()
        return out

    def scrub_all(self, *, repair: bool = True) -> dict[str, dict]:
        """CRC-scrub every live durable replica; name -> scrub report."""
        out: dict[str, dict] = {}
        for reps in self.replicas.values():
            for rep in reps:
                if rep.durability and not rep.crashed:
                    report = rep.scrub(repair=repair)
                    if report is not None:
                        out[rep.name] = report
        return out

    def anti_entropy(self, shard_ids=None) -> dict:
        """One anti-entropy round (see :class:`AntiEntropy`).

        Read-repair hints the router accumulated since the last round
        ride along in the report — the digest pass covers the flagged
        replicas either way, so draining the queue here just records
        which divergences were *noticed* on the read path first.
        """
        hints = self.router.drain_read_repairs()
        report = self._repairer.run(shard_ids)
        report["read_repair_hints"] = [
            {"shard": sid, "replica": name} for sid, name in hints
        ]
        return report

    def quarantine_backlog(self) -> dict[str, list]:
        """Replica name -> quarantined key ranges awaiting repair."""
        out: dict[str, list] = {}
        for reps in self.replicas.values():
            for rep in reps:
                ranges = rep.quarantined_ranges()
                if ranges:
                    out[rep.name] = [[lo, hi] for lo, hi in ranges]
        return out

    # ------------------------------------------------------------------
    # live resharding
    # ------------------------------------------------------------------
    def _scan_shard(self, shard_id: int, lo: int, hi: int) -> list:
        """Read ``[lo, hi]`` from any reachable replica of the shard."""
        for rep in self.replicas[shard_id]:
            try:
                return rep.scan_range(lo, hi)
            except (ReplicaUnreachableError, TransientIOError):
                # Unreachable or a retry-exhausted storage fault: the
                # next replica holds the same data.
                continue
        raise RuntimeError(
            f"no reachable replica of shard {shard_id} to backfill from"
        )

    def migrate_segment(self, segment: int, dest: int) -> dict:
        """Move one segment to ``dest`` while traffic flows.

        Two-epoch protocol: begin (dual ownership), backfill every
        destination replica from a reachable source replica (dual
        writes cover keys arriving meanwhile; unreachable destination
        replicas get hints), commit.  Any backfill failure aborts the
        migration and the old owner keeps the segment.
        """
        source = self.map.owners(segment)[0]
        self.map.begin_migration(segment, dest)
        try:
            lo, hi = self.map.segment_range(segment)
            pairs = self._scan_shard(source, lo, hi)
            for rep in self.replicas[dest]:
                for key, value in pairs:
                    self._write(rep, key, value)
        except BaseException:
            self.map.abort_migration(segment)
            raise
        self.map.commit_migration(segment)
        return {
            "segment": segment,
            "source": source,
            "dest": dest,
            "keys": len(pairs),
            "epoch": self.map.epoch,
        }

    def add_shard(self, shard_id: "int | None" = None) -> dict:
        """Grow the cluster by one shard, migrating its segments live.

        Builds and starts the new shard's replicas, registers them with
        the router, adds the shard to the ring, then migrates each
        reassigned segment through :meth:`migrate_segment` one at a
        time — traffic keeps flowing throughout, reading both owners of
        whichever segment is mid-flight.
        """
        sid = (
            shard_id if shard_id is not None else max(self.replicas) + 1
        )
        if sid in self.replicas:
            raise ValueError(f"shard {sid} already exists")
        reps = [
            self._build_replica(sid, rid)
            for rid in range(self.replicas_per_shard)
        ]
        for rep in reps:
            rep.start()
        self.replicas[sid] = reps
        self.router.add_shard(sid, reps)
        for rep in reps:
            self._federate_replica(sid, rep)
        segments = self.map.add_shard(sid)
        moved = [self.migrate_segment(seg, sid) for seg in segments]
        return {
            "shard": sid,
            "segments": [m["segment"] for m in moved],
            "keys_moved": sum(m["keys"] for m in moved),
            "epoch": self.map.epoch,
        }

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Cluster snapshot: router view + hints + per-replica counters."""
        view = self.router.health()
        view["hints"] = self.hint_backlog()
        view["hints_dropped"] = int(self._c_hints_dropped.value)
        view["keys_accepted"] = self.keys_accepted
        view["drift"] = self.router.drift_scores()
        if self.slo is not None:
            view["slo_active"] = [
                {"slo": name, "severity": sev}
                for name, sev in self.slo.active_alerts()
            ]
        if self.durability:
            view["quarantine"] = self.quarantine_backlog()
        return view

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FilterCluster(shards={len(self.replicas)}, "
            f"replicas_per_shard={self.replicas_per_shard}, "
            f"epoch={self.map.epoch})"
        )
