"""Per-replica health state machine (healthy → suspect → down → recovering).

The router must not learn about a dead replica by burning a request
deadline on it per query.  Each replica carries a
:class:`ReplicaHealth` fed by every outcome the router observes — live
requests and explicit probes alike — and the candidate-selection order
prefers healthier replicas, so a sick one stops seeing traffic within a
handful of failures while still being probed for recovery.

States and transitions (simulated clock, no hidden timers)::

    healthy ──(suspect_after consecutive failures)──▶ suspect
    suspect ──(down_after further consecutive failures)──▶ down
    suspect ──(1 success)──▶ healthy
    down ──(down_retry_ns elapsed)──▶ recovering     [clock-driven]
    recovering ──(recover_after consecutive successes)──▶ healthy
    recovering ──(1 failure)──▶ down                 [retry timer restarts]

``down`` is the only state the router skips outright (unless every
replica of a shard is down — then it tries them anyway, because a
degraded attempt beats a fabricated answer).  ``recovering`` admits
traffic but ranks below ``healthy``/``suspect``, so the first requests a
reborn replica sees are the cluster's cheapest.
"""

from __future__ import annotations

import threading

from repro.storage.env import SimulatedClock

__all__ = ["ReplicaHealth", "HEALTH_STATES"]

HEALTH_STATES = ("healthy", "suspect", "down", "recovering")

#: How strongly the router prefers each state when ranking candidates
#: (lower = tried first).
STATE_RANK = {"healthy": 0, "suspect": 1, "recovering": 2, "down": 3}


class ReplicaHealth:
    """Failure-driven health tracker for one replica (see module docs).

    Parameters
    ----------
    clock:
        The cluster's shared simulated clock (drives down → recovering).
    suspect_after:
        Consecutive failures that demote healthy → suspect.
    down_after:
        Further consecutive failures that demote suspect → down.
    down_retry_ns:
        Simulated time a replica stays down before probes are allowed
        again (the recovering window).
    recover_after:
        Consecutive successes that promote recovering → healthy.
    """

    def __init__(
        self,
        clock: SimulatedClock,
        *,
        suspect_after: int = 1,
        down_after: int = 3,
        down_retry_ns: int = 100_000_000,
        recover_after: int = 2,
    ) -> None:
        if suspect_after < 1 or down_after < 1 or recover_after < 1:
            raise ValueError("thresholds must be >= 1")
        if down_retry_ns < 0:
            raise ValueError(f"down_retry_ns must be >= 0, got {down_retry_ns}")
        self.clock = clock
        self.suspect_after = suspect_after
        self.down_after = down_after
        self.down_retry_ns = down_retry_ns
        self.recover_after = recover_after
        self._lock = threading.Lock()
        self._state = "healthy"
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._down_since_ns = 0
        #: state -> number of times it was entered (telemetry).
        self.transitions = {s: 0 for s in HEALTH_STATES}

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, refreshing the clock-driven down → recovering."""
        with self._lock:
            self._refresh()
            return self._state

    def rank(self) -> int:
        """Candidate-ordering rank (lower = preferred)."""
        return STATE_RANK[self.state]

    def is_down(self) -> bool:
        """True while the replica should receive no traffic."""
        return self.state == "down"

    def _refresh(self) -> None:
        """down → recovering once the retry window elapsed (lock held)."""
        if (
            self._state == "down"
            and self.clock.now_ns() >= self._down_since_ns + self.down_retry_ns
        ):
            self._enter("recovering")

    def _enter(self, state: str) -> None:
        """Transition bookkeeping (lock held)."""
        self._state = state
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self.transitions[state] += 1
        if state == "down":
            self._down_since_ns = self.clock.now_ns()

    # ------------------------------------------------------------------
    # outcomes
    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """A request or probe against this replica succeeded."""
        with self._lock:
            self._refresh()
            self._consecutive_failures = 0
            self._consecutive_successes += 1
            if self._state == "suspect":
                self._enter("healthy")
            elif (
                self._state == "recovering"
                and self._consecutive_successes >= self.recover_after
            ):
                self._enter("healthy")

    def record_failure(self) -> None:
        """A request or probe against this replica failed or timed out."""
        with self._lock:
            self._refresh()
            self._consecutive_successes = 0
            self._consecutive_failures += 1
            if self._state == "healthy":
                if self._consecutive_failures >= self.suspect_after:
                    self._enter("suspect")
            elif self._state == "suspect":
                if self._consecutive_failures >= self.down_after:
                    self._enter("down")
            elif self._state == "recovering":
                self._enter("down")

    def force_down(self) -> None:
        """Mark the replica down immediately (crash notification)."""
        with self._lock:
            if self._state != "down":
                self._enter("down")

    def snapshot(self) -> dict:
        """State + transition counters for health endpoints."""
        with self._lock:
            self._refresh()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "transitions": dict(self.transitions),
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReplicaHealth(state={self.state})"
