"""Cluster-level chaos: seeded crash/partition/slow-shard schedules.

:class:`ClusterChaos` layers *topology* faults on top of the storage
faults each replica's own :class:`~repro.storage.faults.FaultInjector`
already injects (PR 2): it kills and reboots whole replicas, cuts and
heals their network paths, and degrades a replica's storage latency in
place (the "slow shard" the router's hedging exists for).  Everything
draws from one seeded PRNG, so a failing chaos run replays from its
seed.

One invariant is enforced, not merely hoped for: **chaos never takes
down the last reachable replica of a shard.**  The cluster's acceptance
bar is "no false negatives while at least one replica per shard is
alive"; the driver keeps the premise true so the suite genuinely tests
the conclusion.  (Losing *every* replica of a shard is still a
well-defined state — the router answers that shard's pieces
all-positive — but it makes the zero-false-negative assertion vacuous
for those queries, so the scheduled chaos stays within the bar.)

Each :meth:`step` also advances the shared simulated clock, so breaker
open windows and health ``down → recovering`` retry timers actually
elapse between actions instead of freezing mid-scenario.
"""

from __future__ import annotations

import random

from repro.cluster.cluster import FilterCluster

__all__ = ["ClusterChaos"]

#: Default action mix: recovery actions slightly outweigh damage so long
#: runs don't ratchet into a fully degraded fleet.  The durability
#: actions default to weight 0 — they only make sense against a
#: ``durability=True`` cluster, so suites opt in by passing weights —
#: and zero-weight entries are never drawn, so existing seeded
#: schedules replay unchanged.
DEFAULT_WEIGHTS = {
    "crash": 3,
    "restart": 4,
    "partition": 3,
    "heal": 4,
    "slow": 2,
    "unslow": 2,
    "wal_tear": 0,
    "rot_checkpoint": 0,
    "rot_table": 0,
}


class ClusterChaos:
    """Seeded fault scheduler for one :class:`FilterCluster`.

    Parameters
    ----------
    cluster:
        The cluster under test.
    seed:
        PRNG seed — the entire schedule is a pure function of it and
        the (deterministic) cluster state it observes.
    weights:
        Relative action weights (missing keys fall back to defaults).
    slow_read_p, slow_read_ns:
        The storage degradation a "slow" action applies.
    step_ns:
        Simulated time advanced per step (lets open/retry windows pass).
    """

    def __init__(
        self,
        cluster: FilterCluster,
        *,
        seed: int = 0,
        weights: "dict[str, int] | None" = None,
        slow_read_p: float = 0.8,
        slow_read_ns: int = 40_000_000,
        step_ns: int = 25_000_000,
    ) -> None:
        self.cluster = cluster
        self.rng = random.Random(seed)
        self.weights = {**DEFAULT_WEIGHTS, **(weights or {})}
        self.slow_read_p = slow_read_p
        self.slow_read_ns = slow_read_ns
        self.step_ns = step_ns
        #: (shard, replica) -> state the action must undo.
        self._crashed: set[tuple[int, int]] = set()
        self._partitioned: set[tuple[int, int]] = set()
        self._slowed: dict[tuple[int, int], float] = {}
        self.events: list[dict] = []

    # ------------------------------------------------------------------
    # target selection
    # ------------------------------------------------------------------
    def _all_targets(self) -> list[tuple[int, int]]:
        return [
            (sid, rid)
            for sid, reps in self.cluster.replicas.items()
            for rid in range(len(reps))
        ]

    def _killable(self) -> list[tuple[int, int]]:
        """Replicas that may lose reachability without breaking the
        last-replica-standing invariant."""
        out = []
        for sid, reps in self.cluster.replicas.items():
            reachable = [
                rid for rid, rep in enumerate(reps) if rep.reachable()
            ]
            if len(reachable) >= 2:
                out.extend((sid, rid) for rid in reachable)
        return out

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def _act_crash(self):
        targets = self._killable()
        if not targets:
            return None
        sid, rid = self.rng.choice(targets)
        self.cluster.crash_replica(sid, rid)
        self._crashed.add((sid, rid))
        return {"action": "crash", "shard": sid, "replica": rid}

    def _crashed_now(self) -> list[tuple[int, int]]:
        """Replicas actually down — scheduled crashes plus write-path
        panics (a double WAL tear crashes a replica outside this
        driver's bookkeeping, and it still deserves a restart draw)."""
        return [
            (sid, rid)
            for sid, reps in self.cluster.replicas.items()
            for rid, rep in enumerate(reps)
            if rep.crashed
        ]

    def _act_restart(self):
        crashed = self._crashed_now()
        if not crashed:
            return None
        sid, rid = self.rng.choice(crashed)
        rebuild = self.rng.choice(("immediate", "deferred"))
        self.cluster.restart_replica(sid, rid, rebuild=rebuild)
        self._crashed.discard((sid, rid))
        return {
            "action": "restart",
            "shard": sid,
            "replica": rid,
            "rebuild": rebuild,
        }

    def _act_partition(self):
        targets = [t for t in self._killable() if t not in self._partitioned]
        if not targets:
            return None
        sid, rid = self.rng.choice(targets)
        self.cluster.partition_replica(sid, rid)
        self._partitioned.add((sid, rid))
        return {"action": "partition", "shard": sid, "replica": rid}

    def _act_heal(self):
        if not self._partitioned:
            return None
        sid, rid = self.rng.choice(sorted(self._partitioned))
        self.cluster.heal_replica(sid, rid)
        self._partitioned.discard((sid, rid))
        return {"action": "heal", "shard": sid, "replica": rid}

    def _act_slow(self):
        targets = [
            t for t in self._all_targets() if t not in self._slowed
        ]
        if not targets:
            return None
        sid, rid = self.rng.choice(targets)
        previous = self.cluster.slow_replica(
            sid, rid, self.slow_read_p, self.slow_read_ns
        )
        self._slowed[(sid, rid)] = previous
        return {"action": "slow", "shard": sid, "replica": rid}

    def _act_unslow(self):
        if not self._slowed:
            return None
        sid, rid = self.rng.choice(sorted(self._slowed))
        previous = self._slowed.pop((sid, rid))
        self.cluster.slow_replica(sid, rid, previous)
        return {"action": "unslow", "shard": sid, "replica": rid}

    # -- durability faults (need durability=True replicas to matter) ----
    def _durable_targets(self) -> list[tuple[int, int]]:
        return [
            (sid, rid)
            for sid, reps in self.cluster.replicas.items()
            for rid, rep in enumerate(reps)
            if rep.durability
        ]

    def _act_wal_tear(self):
        """Arm a double torn append: the next group commit on this
        replica tears, the retry tears again, and the write path panics
        the replica mid-append (see ``FilterCluster._write``)."""
        targets = [
            t for t in self._killable()
            if self.cluster.replica(*t).durability
        ]
        if not targets:
            return None
        sid, rid = self.rng.choice(targets)
        self.cluster.replica(sid, rid).injector.arm_torn_append(2)
        return {"action": "wal_tear", "shard": sid, "replica": rid}

    def _act_rot_checkpoint(self):
        """Flip one bit in a replica's newest checkpoint blob at rest."""
        candidates = []
        for sid, rid in self._durable_targets():
            rep = self.cluster.replica(sid, rid)
            name = rep.lsm.checkpoints.latest_name()
            if name is not None:
                candidates.append((sid, rid, name))
        if not candidates:
            return None
        sid, rid, name = self.rng.choice(candidates)
        bit = self.cluster.replica(sid, rid).env.rot_blob(name)
        return {
            "action": "rot_checkpoint",
            "shard": sid,
            "replica": rid,
            "blob": name,
            "bit": bit,
        }

    def _act_rot_table(self):
        """Flip one bit in a cold SSTable data blob at rest.

        Replica 0 of every shard is the designated survivor: its data
        blobs are never rotted, the at-rest analogue of the driver's
        "never crash the last live replica" invariant.  Sibling replicas
        hold byte-identical tables (same keys, same deterministic flush
        boundaries), so unrestricted rot could hit every copy of a range
        and leave anti-entropy with no healthy source to refill from.
        """
        candidates = []
        for sid, rid in self._durable_targets():
            if rid == 0:
                continue
            rep = self.cluster.replica(sid, rid)
            for record in rep.lsm.data_records().values():
                candidates.append((sid, rid, record.blob_name))
        if not candidates:
            return None
        sid, rid, name = self.rng.choice(sorted(candidates))
        bit = self.cluster.replica(sid, rid).env.rot_blob(name)
        return {
            "action": "rot_table",
            "shard": sid,
            "replica": rid,
            "blob": name,
            "bit": bit,
        }

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def step(self) -> dict:
        """One chaos action (weighted, seeded) + one clock tick.

        Inapplicable draws (e.g. "heal" with nothing partitioned) fall
        through to the next weighted draw; a fully constrained state
        yields a recorded no-op.
        """
        self.cluster.clock.advance(self.step_ns)
        actions = list(self.weights)
        weights = [self.weights[a] for a in actions]
        event = None
        for _ in range(len(actions) * 4):
            name = self.rng.choices(actions, weights=weights)[0]
            event = getattr(self, f"_act_{name}")()
            if event is not None:
                break
        if event is None:
            event = {"action": "noop"}
        event["clock_ns"] = self.cluster.clock.now_ns()
        self.events.append(event)
        return event

    def run(self, steps: int) -> list[dict]:
        """Run ``steps`` chaos actions; returns their event log."""
        return [self.step() for _ in range(steps)]

    def heal_all(self) -> None:
        """Undo every outstanding fault (end-of-scenario cleanup)."""
        # Armed-but-unfired faults (e.g. a wal_tear the replica never
        # wrote into) must not outlive the storm and tear post-chaos
        # repair traffic.
        for reps in self.cluster.replicas.values():
            for rep in reps:
                if rep.injector is not None:
                    rep.injector.disarm()
        for sid, rid in sorted(set(self._crashed_now()) | self._crashed):
            if self.cluster.replica(sid, rid).crashed:
                self.cluster.restart_replica(sid, rid)
        self._crashed.clear()
        for sid, rid in sorted(self._partitioned):
            self.cluster.heal_replica(sid, rid)
        self._partitioned.clear()
        for (sid, rid), previous in sorted(self._slowed.items()):
            self.cluster.slow_replica(sid, rid, previous)
        self._slowed.clear()

    def summary(self) -> dict:
        """Action counts + outstanding fault state."""
        counts: dict[str, int] = {}
        for ev in self.events:
            counts[ev["action"]] = counts.get(ev["action"], 0) + 1
        return {
            "steps": len(self.events),
            "actions": counts,
            "outstanding": {
                "crashed": sorted(self._crashed),
                "partitioned": sorted(self._partitioned),
                "slowed": sorted(self._slowed),
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClusterChaos(steps={len(self.events)})"
