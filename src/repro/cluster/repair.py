"""Anti-entropy: quarantine refill + merkle digest exchange and repair.

Replicas of one shard receive the same write stream, so they should
hold the same data — but crashes, quarantined restores and at-rest rot
make "should" a claim that needs checking.  :class:`AntiEntropy` is the
background process that checks and repairs it, in two passes per shard:

1. **quarantine refill** — a replica that restored with quarantined key
   ranges (data blobs lost to rot, see
   :meth:`~repro.cluster.replica.Replica.restart`) gets each range
   re-fetched from a healthy sibling via ``scan_range`` (which itself
   refuses to serve from a quarantined copy, so a sick sibling is never
   the source) and written back through the replica's normal write path
   — WAL-logged, so the repair is itself durable.  Only then is the
   quarantine lifted and the range stops answering all-positive.
2. **digest exchange** — every reachable replica summarises its live
   pairs as a :class:`~repro.durability.digest.SegmentDigestTree` keyed
   by a per-round seed and aligned to the cluster map's dyadic
   segments.  Merkle descent (``diff``) pins divergence to segments;
   each divergent segment is repaired by **union**: fetch the segment's
   pairs from every replica, merge by key, write each replica the keys
   it is missing.  Union is the right merge because cluster writes are
   add-only — there is no cluster-level delete, so a key present
   anywhere was accepted at some point and belongs everywhere.

Both passes preserve the one-sided contract at every instant: repair
only *adds* keys, and a range is only de-quarantined after it has been
refilled.  The returned report feeds the durability-chaos CI job's
``SCRUB_REPORT`` artifact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.cluster.replica import Replica, ReplicaUnreachableError
from repro.core.errors import TornAppendError, TransientIOError
from repro.durability.digest import SegmentDigestTree
from repro.hashing.mix64 import mix64
from repro.telemetry.context import get_trace_store
from repro.telemetry.tracing import child_span, get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import FilterCluster

__all__ = ["AntiEntropy"]

_MASK64 = 0xFFFFFFFFFFFFFFFF


class AntiEntropy:
    """Shard-by-shard repair driver over a :class:`FilterCluster`."""

    def __init__(
        self, cluster: "FilterCluster", *, seed: "int | None" = None
    ) -> None:
        self.cluster = cluster
        self.seed = (
            seed
            if seed is not None
            else mix64((cluster.seed ^ 0xA17E9A7B0C5) & _MASK64)
        )
        self._round = 0
        reg = cluster.registry
        labels = {"component": "cluster"}
        self._c_rounds = reg.counter(
            "repair_rounds", help="anti-entropy rounds run", labels=labels
        )
        self._c_refilled = reg.counter(
            "repair_quarantine_refilled",
            help="quarantined ranges refilled from a sibling",
            labels=labels,
        )
        self._c_diverged = reg.counter(
            "repair_segments_diverged",
            help="digest segments found divergent",
            labels=labels,
        )
        self._c_copied = reg.counter(
            "repair_pairs_copied",
            help="pairs copied between replicas by repair",
            labels=labels,
        )

    # ------------------------------------------------------------------
    # pass 1: quarantine refill
    # ------------------------------------------------------------------
    def _fetch_from_sibling(
        self, reps: list[Replica], target: Replica, lo: int, hi: int
    ) -> "list | None":
        """Read ``[lo, hi]`` from any healthy sibling of ``target``."""
        for rep in reps:
            if rep is target:
                continue
            try:
                return rep.scan_range(lo, hi)
            except (ReplicaUnreachableError, TransientIOError):
                # Unreachable, or the sibling's own copy of the range is
                # quarantined/faulted: try the next one.
                continue
        return None

    def _refill_quarantine(
        self, reps: list[Replica], report: dict[str, Any]
    ) -> None:
        for rep in reps:
            for qlo, qhi in rep.quarantined_ranges():
                pairs = self._fetch_from_sibling(reps, rep, qlo, qhi)
                if pairs is None:
                    report["unrepaired"].append(
                        {"replica": rep.name, "range": [qlo, qhi],
                         "why": "no healthy source"}
                    )
                    continue
                try:
                    for key, value in pairs:
                        rep.put(key, value)
                except ReplicaUnreachableError:
                    report["unrepaired"].append(
                        {"replica": rep.name, "range": [qlo, qhi],
                         "why": "target unreachable"}
                    )
                    continue
                except TornAppendError:
                    # The refill writes are WAL-logged like any other;
                    # a double tear mid-refill leaves the quarantine in
                    # place for the next round rather than half-lifting.
                    report["unrepaired"].append(
                        {"replica": rep.name, "range": [qlo, qhi],
                         "why": "wal torn during refill"}
                    )
                    continue
                rep.clear_quarantine(qlo, qhi)
                self._c_refilled.inc()
                report["quarantine_refilled"] += 1
                report["pairs_copied"] += len(pairs)
                self._c_copied.inc(len(pairs))

    # ------------------------------------------------------------------
    # pass 2: digest exchange + union repair
    # ------------------------------------------------------------------
    def _digest(self, rep: Replica, seed: int) -> SegmentDigestTree:
        cmap = self.cluster.map
        domain_hi = (1 << cmap.key_bits) - 1
        return SegmentDigestTree.build(
            rep.lsm.range_query(0, domain_hi),
            segment_bits=cmap.segment_bits,
            key_bits=cmap.key_bits,
            seed=seed,
        )

    def _repair_segment(
        self, reps: list[Replica], segment: int, report: dict[str, Any]
    ) -> None:
        lo, hi = self.cluster.map.segment_range(segment)
        holdings = [
            (rep, dict(rep.lsm.range_query(lo, hi))) for rep in reps
        ]
        union: dict[int, Any] = {}
        # First-seen wins on (rare) conflicting values: deterministic,
        # and membership — the property the filters serve — is identical
        # either way.
        for _, pairs in holdings:
            for key, value in pairs.items():
                union.setdefault(key, value)
        for rep, pairs in holdings:
            missing = [
                (key, value)
                for key, value in union.items()
                if key not in pairs
            ]
            try:
                for key, value in missing:
                    rep.put(key, value)
            except (ReplicaUnreachableError, TornAppendError):
                report["unrepaired"].append(
                    {"replica": rep.name, "segment": segment,
                     "why": "write failed during repair"}
                )
                continue
            report["pairs_copied"] += len(missing)
            self._c_copied.inc(len(missing))

    def _digest_pass(
        self, reps: list[Replica], report: dict[str, Any]
    ) -> None:
        live = [rep for rep in reps if rep.reachable()]
        if len(live) < 2:
            return
        seed = mix64((self.seed ^ self._round) & _MASK64)
        digests = [self._digest(rep, seed) for rep in live]
        divergent: set[int] = set()
        reference = digests[0]
        for other in digests[1:]:
            divergent.update(reference.diff(other))
        for segment in sorted(divergent):
            self._c_diverged.inc()
            report["segments_diverged"].append(segment)
            self._repair_segment(live, segment, report)
        if divergent:
            # Convergence check with a fresh seed (digests from the
            # repair round itself must not be reused by accident).
            check = mix64((self.seed ^ self._round ^ 0x5CA1AB1E) & _MASK64)
            after = [self._digest(rep, check) for rep in live]
            report["converged"] = all(
                not after[0].diff(d) for d in after[1:]
            )

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self, shard_ids=None) -> dict[str, Any]:
        """One full anti-entropy round; returns the repair report."""
        self._round += 1
        self._c_rounds.inc()
        report: dict[str, Any] = {
            "round": self._round,
            "quarantine_refilled": 0,
            "segments_diverged": [],
            "pairs_copied": 0,
            "unrepaired": [],
            "converged": True,
        }
        shards = (
            sorted(self.cluster.replicas)
            if shard_ids is None
            else sorted(shard_ids)
        )
        tracer = get_tracer()
        store = (
            getattr(self.cluster, "trace_store", None) or get_trace_store()
        )
        if not tracer.enabled or store is None:
            self._run_shards(shards, report)
            return report
        # Repair traffic carries a trace like any other exchange: the
        # round's root span holds one child per shard, under which the
        # repair writes' WAL appends attach.
        ctx = store.new_context()
        with tracer.span("cluster.repair") as root:
            ctx.stamp(root)
            root.set(round=self._round, shards=len(shards))
            self._run_shards(shards, report)
            root.set(
                refilled=report["quarantine_refilled"],
                diverged=len(report["segments_diverged"]),
                pairs_copied=report["pairs_copied"],
            )
        acted = bool(
            report["quarantine_refilled"]
            or report["segments_diverged"]
            or report["unrepaired"]
        )
        store.record(ctx, root, interesting=acted, kind="repair")
        return report

    def _run_shards(self, shards, report: dict[str, Any]) -> None:
        for sid in shards:
            reps = self.cluster.replicas[sid]
            with child_span("repair.shard") as sp:
                if sp is not None:
                    sp.set(shard=sid)
                self._refill_quarantine(reps, report)
                self._digest_pass(reps, report)
