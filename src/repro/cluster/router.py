"""The shard router: scatter/gather with failover and hedged requests.

One :class:`ClusterRouter` fronts N shards × R replicas.  A range query
is split at segment boundaries (:meth:`ClusterMap.split_range`), each
piece is sent to the shard(s) owning its segment — two shards while a
segment is mid-migration — and the per-shard verdicts are OR-merged
into the answer.  The merge is where the one-sided contract lives:

    **any shard the router cannot get a real answer from contributes
    ``True`` for its pieces.**

A crashed replica, a partitioned replica, an open breaker, a blown
deadline, an overloaded queue — every failure mode bottoms out in the
same place: that shard's pieces read as positive.  Degradation costs
precision (downstream I/O on false positives), never correctness (a
``False`` from this router means every consulted filter really said
no).  The project lint engine enforces this shape statically
(``one-sided-error`` covers ``cluster/``).

Per shard, the exchange protocol is:

1. **select** — replicas ranked by health (healthy < suspect <
   recovering < down), then rotation for balance; replicas inside a
   ``retry_after`` backoff window (from a breaker-open or shed answer —
   see :class:`~repro.service.service.ServiceResponse.retry_after_ns`)
   are deprioritised until the window passes.
2. **failover** — an unreachable or overloaded replica is skipped and
   the next candidate tried, recording a health failure each time.
3. **hedge** — once the primary's wait exceeds a p99-derived delay
   (per-shard latency reservoir of observed response times), the same
   request is issued to the next-best replica and the first *real*
   answer wins.  One hedge per shard per request: hedging is a tail
   amputation, not a retry storm.
4. **merge** — a non-degraded answer is taken as-is; a degraded
   (all-positive) answer is kept as a fallback while better candidates
   are tried; no candidates left means the fallback (or fabricated
   all-``True``) is returned.

Health judgements are made *here*, from the router's observations —
replicas never self-report.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field

from repro.cluster.replica import Replica, ReplicaUnreachableError
from repro.cluster.topology import ClusterMap
from repro.hashing.mix64 import mix64
from repro.service.admission import ServiceOverloadError
from repro.service.health import LatencyRecorder
from repro.storage.env import SimulatedClock
from repro.telemetry.context import (
    TraceContext,
    TraceStore,
    fmt_trace_id,
    get_trace_store,
)
from repro.telemetry.drift import DriftDetector
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracing import child_span, get_tracer

__all__ = ["ClusterRouter", "ClusterResponse", "ShardOutcome"]

#: Hedge-delay bounds (wall seconds).  The delay is derived from the
#: shard's observed p99 but clamped: never so small that hedges fire on
#: scheduler jitter, never so large that a stuck shard blocks a request
#: for longer than this before help is summoned.
DEFAULT_HEDGE_MIN_S = 0.002
DEFAULT_HEDGE_MAX_S = 0.100
#: Observations required before trusting the shard's own p99; until
#: then the hedge delay is the max bound (conservative).
DEFAULT_HEDGE_WARMUP = 32
#: Multiplier over the observed p99 — hedging at exactly p99 fires on
#: 1% of healthy requests; 1.5x keeps the hedge rate well under that.
DEFAULT_HEDGE_FACTOR = 1.5


@dataclass
class ShardOutcome:
    """One shard's contribution to a routed query."""

    shard_id: int
    positives: list[bool]
    #: "ok" — a replica answered non-degraded; "degraded" — best answer
    #: was a replica's all-positive fallback; "unreachable" — no replica
    #: produced any answer, verdicts fabricated all-True.
    reason: str
    replica: "str | None" = None
    attempts: int = 0
    hedged: bool = False

    @property
    def degraded(self) -> bool:
        return self.reason != "ok"


@dataclass
class ClusterResponse:
    """A routed (batch) range query's merged answer.

    ``positives`` has one verdict per requested range.  ``degraded`` is
    true when *any* contributing shard fell back to an all-positive
    answer — the response is still one-sided either way.  ``epoch`` is
    the cluster-map epoch the routing decision used.
    """

    positives: list[bool]
    degraded: bool
    epoch: int
    shards: list[ShardOutcome] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Mirror ServiceResponse's constructive check: any shard that
        # degraded must have contributed only positives.
        for outcome in self.shards:
            if outcome.degraded and not all(outcome.positives):
                raise ValueError(
                    f"degraded shard {outcome.shard_id} produced a "
                    f"negative verdict (reason={outcome.reason!r})"
                )

    @property
    def positive(self) -> bool:
        """Scalar verdict: any range (piece) positive."""
        return any(self.positives)


def _interesting(resp: ClusterResponse) -> bool:
    """Tail-sampling hint: keep traces where routing had to work."""
    return resp.degraded or any(
        o.hedged or o.attempts > 1 for o in resp.shards
    )


class ClusterRouter:
    """Scatter/gather router over shard replicas (see module docs).

    Parameters
    ----------
    cluster_map:
        Segment ownership (shared with the resharding driver).
    replicas:
        ``shard_id -> [Replica, ...]`` — every shard needs >= 1.
    clock:
        The cluster-shared simulated clock (backoff windows, probes).
    registry:
        Metrics registry for router counters (private one by default).
    hedging:
        Disable to get the "unprotected" baseline the bench compares
        against: no hedges, requests ride out the slow replica.
    max_attempts:
        Cap on distinct replicas tried per shard per request (None =
        every replica once).
    """

    def __init__(
        self,
        cluster_map: ClusterMap,
        replicas: "dict[int, list[Replica]]",
        *,
        clock: SimulatedClock,
        registry: "MetricsRegistry | None" = None,
        hedging: bool = True,
        hedge_factor: float = DEFAULT_HEDGE_FACTOR,
        hedge_min_s: float = DEFAULT_HEDGE_MIN_S,
        hedge_max_s: float = DEFAULT_HEDGE_MAX_S,
        hedge_warmup: int = DEFAULT_HEDGE_WARMUP,
        max_attempts: "int | None" = None,
        probe_deadline_ns: int = 25_000_000,
        base_deadline_ns: int = 50_000_000,
        per_range_deadline_ns: int = 5_000_000,
        trace_store: "TraceStore | None" = None,
        drift_window_ns: int = 2_000_000_000,
    ) -> None:
        for shard_id in cluster_map.ring.shard_ids:
            if not replicas.get(shard_id):
                raise ValueError(f"shard {shard_id} has no replicas")
        self.map = cluster_map
        self.replicas = {sid: list(reps) for sid, reps in replicas.items()}
        self.clock = clock
        self.registry = registry if registry is not None else MetricsRegistry()
        self.hedging = hedging
        self.hedge_factor = hedge_factor
        self.hedge_min_s = hedge_min_s
        self.hedge_max_s = hedge_max_s
        self.hedge_warmup = hedge_warmup
        self.max_attempts = max_attempts
        self.probe_deadline_ns = probe_deadline_ns
        self.base_deadline_ns = base_deadline_ns
        self.per_range_deadline_ns = per_range_deadline_ns
        #: Tail-sampling destination for routed traces (falls back to
        #: the process-wide store; None + disabled tracer = zero cost).
        self.trace_store = trace_store
        self.drift_window_ns = drift_window_ns
        self._lock = threading.Lock()
        self._rotation: dict[int, int] = {sid: 0 for sid in self.replicas}
        #: replica name -> simulated-clock instant its backoff expires.
        self._backoff_until: dict[str, int] = {}
        #: (shard_id, replica_name) flagged divergent by read-repair,
        #: awaiting an anti-entropy round (drained by the cluster).
        self._read_repair_queue: list[tuple[int, str]] = []
        #: shard -> reservoir of observed response wall latencies.
        self._latency: dict[int, LatencyRecorder] = {
            sid: LatencyRecorder(seed=sid) for sid in self.replicas
        }
        self._counters = {}
        for name, help_ in (
            ("cluster_requests", "routed cluster queries"),
            ("cluster_subqueries", "per-shard sub-queries issued"),
            ("cluster_failovers", "replica failovers (submit-time skips)"),
            ("cluster_hedges", "hedge requests fired"),
            ("cluster_hedge_wins", "hedges that produced the winning answer"),
            ("cluster_degraded_merges", "shard answers merged degraded"),
            ("cluster_unreachable_shards", "shards with no answering replica"),
            ("cluster_probes_ok", "successful health probes"),
            ("cluster_probes_failed", "failed health probes"),
            ("cluster_read_repairs", "divergent replica answers OR-merged"),
        ):
            self._counters[name] = self.registry.counter(
                name, help=help_, labels={"component": "cluster"}
            )
        self._shard_degraded = {
            sid: self.registry.counter(
                "cluster_shard_degraded",
                help="degraded/unreachable merges for this shard",
                labels={"component": "cluster", "shard": str(sid)},
            )
            for sid in self.replicas
        }
        self._shard_subqueries = {
            sid: self.registry.counter(
                "cluster_shard_subqueries",
                help="sub-queries issued to this shard",
                labels={"component": "cluster", "shard": str(sid)},
            )
            for sid in self.replicas
        }
        #: shard -> workload sketcher (PSI drift scoring per shard).
        self._drift: dict[int, DriftDetector] = {}
        for sid in self.replicas:
            self._drift[sid] = self._make_drift(sid)
        for sid, reps in self.replicas.items():
            for rep in reps:
                self.registry.gauge(
                    "cluster_replica_health",
                    help="0 healthy, 1 suspect, 2 recovering, 3 down",
                    labels={"component": "cluster", "replica": rep.name},
                ).set_fn(lambda r=rep: float(r.health.rank()))

    # ------------------------------------------------------------------
    # public query surface
    # ------------------------------------------------------------------
    def query_range(
        self, lo: int, hi: int, *, deadline_ns: "int | None" = None
    ) -> ClusterResponse:
        """Routed scalar range query: is any live key in ``[lo, hi]``?"""
        return self.query_range_many([(lo, hi)], deadline_ns=deadline_ns)

    def query_range_many(
        self, ranges, *, deadline_ns: "int | None" = None
    ) -> ClusterResponse:
        """Routed batch of range queries (one verdict per range).

        Pieces of all ranges owned by the same shard travel in a single
        batch submission to that shard, so the scatter fan-out is
        O(shards touched), not O(ranges).
        """
        pairs = [(int(lo), int(hi)) for lo, hi in ranges]
        for lo, hi in pairs:
            if lo > hi:
                raise ValueError(f"invalid range [{lo}, {hi}]")
        self._counters["cluster_requests"].inc()
        ctx, store = self._new_trace(deadline_ns)
        if ctx is None:
            return self._route_range_many(pairs, deadline_ns, None, None)
        tracer = get_tracer()
        with tracer.span("cluster.query") as root:
            root.set(kind="range_batch", ranges=len(pairs))
            ctx.stamp(root)
            resp = self._route_range_many(pairs, deadline_ns, ctx, store)
            root.set(degraded=resp.degraded, epoch=resp.epoch)
        store.record(
            ctx, root, interesting=_interesting(resp), kind="range_batch"
        )
        return resp

    def _route_range_many(
        self,
        pairs: "list[tuple[int, int]]",
        deadline_ns: "int | None",
        ctx: "TraceContext | None",
        store: "TraceStore | None",
    ) -> ClusterResponse:
        epoch = self.map.epoch
        # shard -> list of (range_index, piece_lo, piece_hi)
        plan: dict[int, list[tuple[int, int, int]]] = {}
        for idx, (lo, hi) in enumerate(pairs):
            for segment, plo, phi in self.map.split_range(lo, hi):
                for shard in self.map.owners(segment):
                    plan.setdefault(shard, []).append((idx, plo, phi))
        for shard, pieces in plan.items():
            det = self._drift.get(shard)
            if det is not None:
                for _, plo, phi in pieces:
                    det.observe(plo, phi)
        with child_span("router.scatter") as sp:
            if sp is not None:
                sp.set(ranges=len(pairs), shards=len(plan), epoch=epoch)
            outcomes = [
                self._shard_exchange(
                    shard,
                    [(plo, phi) for _, plo, phi in pieces],
                    deadline_ns,
                    ctx=ctx,
                    store=store,
                )
                for shard, pieces in plan.items()
            ]
        # OR-merge: a range is positive when any of its pieces is, on
        # any consulted owner.
        verdicts = [False] * len(pairs)
        degraded = False
        for outcome, (shard, pieces) in zip(outcomes, plan.items()):
            if outcome.degraded:
                degraded = True
                self._counters["cluster_degraded_merges"].inc()
                self._shard_degraded[shard].inc()
            for (idx, _, _), bit in zip(pieces, outcome.positives):
                verdicts[idx] = verdicts[idx] or bit
        return ClusterResponse(
            positives=verdicts,
            degraded=degraded,
            epoch=epoch,
            shards=outcomes,
        )

    def query_point(
        self, key: int, *, deadline_ns: "int | None" = None
    ) -> ClusterResponse:
        """Routed point query for ``key`` (single-shard fast path)."""
        self._counters["cluster_requests"].inc()
        ctx, store = self._new_trace(deadline_ns)
        if ctx is None:
            return self._route_point(int(key), deadline_ns, None, None)
        tracer = get_tracer()
        with tracer.span("cluster.query") as root:
            root.set(kind="point", key=int(key))
            ctx.stamp(root)
            resp = self._route_point(int(key), deadline_ns, ctx, store)
            root.set(degraded=resp.degraded, epoch=resp.epoch)
        store.record(ctx, root, interesting=_interesting(resp), kind="point")
        return resp

    def _route_point(
        self,
        key: int,
        deadline_ns: "int | None",
        ctx: "TraceContext | None",
        store: "TraceStore | None",
    ) -> ClusterResponse:
        segment = self.map.segment_of(key)
        epoch = self.map.epoch
        for shard in self.map.owners(segment):
            det = self._drift.get(shard)
            if det is not None:
                det.observe_point(key)
        outcomes = [
            self._shard_exchange(
                shard, key, deadline_ns, kind="point", ctx=ctx, store=store
            )
            for shard in self.map.owners(segment)
        ]
        degraded = any(o.degraded for o in outcomes)
        for o in outcomes:
            if o.degraded:
                self._counters["cluster_degraded_merges"].inc()
                self._shard_degraded[o.shard_id].inc()
        return ClusterResponse(
            positives=[any(o.positives[0] for o in outcomes)],
            degraded=degraded,
            epoch=epoch,
            shards=outcomes,
        )

    # ------------------------------------------------------------------
    # trace plumbing
    # ------------------------------------------------------------------
    def _new_trace(
        self, deadline_ns: "int | None"
    ) -> "tuple[TraceContext | None, TraceStore | None]":
        """Mint a root trace context, or (None, None) when tracing is off.

        The relative ``deadline_ns`` budget becomes an *absolute*
        simulated-clock deadline on the context, so downstream hops can
        compute their remaining budget from their own ``now``.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return None, None
        store = self.trace_store if self.trace_store is not None else get_trace_store()
        if store is None:
            return None, None
        absolute = (
            self.clock.now_ns() + deadline_ns if deadline_ns is not None else None
        )
        return store.new_context(deadline_ns=absolute), store

    def _attempt_settled(self, span):
        """Future done-callback: close the attempt (hop) span.

        Stitches the replica's own span tree (carried back on the
        response) under the hop span — including for losing hedges and
        abandoned attempts, which settle after the exchange returned.
        """
        tracer = get_tracer()

        def _cb(fut: Future) -> None:
            try:
                resp = fut.result()
            except Exception as exc:  # lint: allow[bare-except] — a done-callback must never raise
                span.set(error=type(exc).__name__, failover=True)
            else:
                span.set(reason=resp.reason)
                if resp.degraded:
                    span.set(degraded=True)
                if resp.trace is not None:
                    span.children.append(resp.trace)
            tracer.finish(span)

        return _cb

    def drift_scores(self) -> "dict[int, float]":
        """Latest per-shard PSI drift score (``workload.drift`` gauge)."""
        return {sid: det.score for sid, det in self._drift.items()}

    def drift_snapshot(self) -> dict:
        """Full per-shard drift state for dashboards and the tuner."""
        return {sid: det.snapshot() for sid, det in self._drift.items()}

    def _make_drift(self, shard_id: int) -> DriftDetector:
        """Build one shard's drift sketcher + instruments (caller stores)."""
        det = DriftDetector(
            clock=self.clock,
            window_ns=self.drift_window_ns,
            seed=mix64(0x9E3779B97F4A7C15 * (shard_id + 1)),
        )
        alerts = self.registry.counter(
            "workload_drift_alerts",
            help="drift-score threshold crossings",
            labels={"component": "cluster", "shard": str(shard_id)},
        )
        det.on_alert = lambda score, c=alerts: c.inc()
        self.registry.gauge(
            "workload_drift",
            help="PSI divergence between trailing query-shape windows",
            labels={"component": "cluster", "shard": str(shard_id)},
        ).set_fn(lambda d=det: d.score)
        return det

    # ------------------------------------------------------------------
    # per-shard exchange: select → failover → hedge → merge
    # ------------------------------------------------------------------
    def _candidates(self, shard_id: int) -> list[Replica]:
        """Replicas in try-order: health rank, backoff, then rotation.

        Down or backed-off replicas sort last rather than disappearing:
        when they are all that's left, trying them beats fabricating an
        answer.
        """
        reps = self.replicas[shard_id]
        with self._lock:
            rot = self._rotation[shard_id]
            self._rotation[shard_id] = rot + 1
            backoff = dict(self._backoff_until)
        now = self.clock.now_ns()
        n = len(reps)

        def sort_key(i: int):
            rep = reps[i]
            backed_off = backoff.get(rep.name, 0) > now
            return (rep.health.rank(), backed_off, (i - rot) % n)

        return [reps[i] for i in sorted(range(n), key=sort_key)]

    def _note_backoff(self, rep: Replica, retry_after_ns: int) -> None:
        """Honor a replica's backpressure hint when picking failovers."""
        if retry_after_ns <= 0:
            return
        until = self.clock.now_ns() + retry_after_ns
        with self._lock:
            if until > self._backoff_until.get(rep.name, 0):
                self._backoff_until[rep.name] = until

    def _hedge_delay_s(self, shard_id: int) -> float:
        """p99-derived hedge delay (wall seconds), clamped to bounds."""
        lat = self._latency[shard_id]
        if len(lat) < self.hedge_warmup:
            return self.hedge_max_s
        p99_s = lat.percentile_ns(99) * self.hedge_factor / 1e9
        return min(max(p99_s, self.hedge_min_s), self.hedge_max_s)

    def _shard_exchange(
        self,
        shard_id: int,
        payload,
        deadline_ns: "int | None",
        kind: str = "batch",
        ctx: "TraceContext | None" = None,
        store: "TraceStore | None" = None,
    ) -> ShardOutcome:
        """Get one shard's verdicts, failing over and hedging as needed."""
        n_out = 1 if kind == "point" else len(payload)
        if deadline_ns is None:
            # The service's deadline covers a whole sub-batch, so the
            # budget must scale with how much work rides in it —
            # otherwise any wide scatter degrades on size alone.
            deadline_ns = (
                self.base_deadline_ns + self.per_range_deadline_ns * n_out
            )
        self._counters["cluster_subqueries"].inc()
        counter = self._shard_subqueries.get(shard_id)
        if counter is not None:
            counter.inc()
        with child_span("router.exchange") as xsp:
            if xsp is not None:
                xsp.set(shard=shard_id, kind=kind, deadline_ns=deadline_ns)
            outcome = self._exchange_inner(
                shard_id, payload, deadline_ns, kind, ctx, store
            )
            if xsp is not None:
                xsp.set(
                    reason=outcome.reason,
                    attempts=outcome.attempts,
                    hedged=outcome.hedged,
                )
                if outcome.degraded:
                    xsp.set(degraded=True)
        return outcome

    def _exchange_inner(
        self,
        shard_id: int,
        payload,
        deadline_ns: int,
        kind: str,
        ctx: "TraceContext | None",
        store: "TraceStore | None",
    ) -> ShardOutcome:
        n_out = 1 if kind == "point" else len(payload)
        candidates = self._candidates(shard_id)
        if self.max_attempts is not None:
            candidates = candidates[: self.max_attempts]
        queue = iter(candidates)
        pending: dict[Future, Replica] = {}
        attempt_spans: "dict[Future, object]" = {}
        hedge_future: "Future | None" = None
        attempts = 0
        hedged = False
        fallback: "ShardOutcome | None" = None
        tracer = get_tracer()

        def launch() -> "Replica | None":
            """Submit to the next viable candidate; returns it or None.

            When tracing, every submission — including ones that fail
            over before a future exists — gets a ``router.attempt`` hop
            span, and the replica receives a child ``TraceContext`` so
            its own span tree carries this trace's id.
            """
            nonlocal attempts
            for rep in queue:
                a_span = None
                child_ctx = None
                if ctx is not None and store is not None:
                    span_id = store.next_span_id()
                    a_span = tracer.start_span("router.attempt")
                    a_span.set(
                        replica=rep.name,
                        shard=shard_id,
                        span_id=span_id,
                        hedge=hedged,
                    )
                    child_ctx = ctx.child(
                        span_id,
                        deadline_ns=self.clock.now_ns() + deadline_ns,
                    )
                kwargs = {"deadline_ns": deadline_ns}
                if child_ctx is not None:
                    kwargs["ctx"] = child_ctx
                try:
                    if kind == "point":
                        fut = rep.submit_point(payload, **kwargs)
                    else:
                        fut = rep.submit_range_batch(payload, **kwargs)
                except ReplicaUnreachableError:
                    if a_span is not None:
                        a_span.set(error="unreachable", failover=True)
                        tracer.finish(a_span)
                    rep.health.record_failure()
                    self._counters["cluster_failovers"].inc()
                    continue
                except ServiceOverloadError as exc:
                    if a_span is not None:
                        a_span.set(error="overload", failover=True)
                        tracer.finish(a_span)
                    self._note_backoff(rep, exc.retry_after_ns)
                    rep.health.record_failure()
                    self._counters["cluster_failovers"].inc()
                    continue
                attempts += 1
                pending[fut] = rep
                if a_span is not None:
                    attempt_spans[fut] = a_span
                    fut.add_done_callback(self._attempt_settled(a_span))
                return rep
            return None

        launch()
        while pending:
            timeout = None
            if self.hedging and not hedged:
                timeout = self._hedge_delay_s(shard_id)
            done, _ = wait(
                list(pending), timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # Primary is past the hedge delay: summon one backup.
                hedged = True
                self._counters["cluster_hedges"].inc()
                hedge_rep = launch()
                if hedge_rep is not None:
                    hedge_future = next(
                        f for f, r in pending.items() if r is hedge_rep
                    )
                continue
            for fut in done:
                rep = pending.pop(fut)
                try:
                    resp = fut.result()
                except (ReplicaUnreachableError, ServiceOverloadError,
                        RuntimeError):
                    rep.health.record_failure()
                    self._counters["cluster_failovers"].inc()
                    continue
                positives = (
                    [bool(resp.positive)]
                    if kind == "point"
                    else [bool(b) for b in resp.positive]
                )
                if not resp.degraded:
                    rep.health.record_success()
                    self._latency[shard_id].record(max(0, resp.wall_ns))
                    won_by_hedge = hedged and fut is hedge_future
                    if won_by_hedge:
                        self._counters["cluster_hedge_wins"].inc()
                    w_span = attempt_spans.get(fut)
                    if w_span is not None:
                        w_span.set(winner=True)
                        if won_by_hedge:
                            w_span.set(hedge_win=True)
                    positives = self._read_repair(
                        shard_id, rep, positives, pending, kind
                    )
                    return ShardOutcome(
                        shard_id=shard_id,
                        positives=positives,
                        reason="ok",
                        replica=rep.name,
                        attempts=attempts,
                        hedged=hedged,
                    )
                # Degraded (all-positive) answer: usable, but try for a
                # real one first.  Breaker-open/shed responses carry a
                # retry-after the failover selection must honor.
                self._note_backoff(rep, resp.retry_after_ns)
                rep.health.record_failure()
                fallback = ShardOutcome(
                    shard_id=shard_id,
                    positives=positives,
                    reason="degraded",
                    replica=rep.name,
                    attempts=attempts,
                    hedged=hedged,
                )
                launch()
        if fallback is not None:
            return fallback
        # No replica produced any answer: the shard is unreachable.
        # The one-sided contract decides the verdicts — all positive.
        self._counters["cluster_unreachable_shards"].inc()
        return ShardOutcome(
            shard_id=shard_id,
            positives=[True] * n_out,
            reason="unreachable",
            replica=None,
            attempts=attempts,
            hedged=hedged,
        )

    # ------------------------------------------------------------------
    # read-repair (divergence observed on the read path)
    # ------------------------------------------------------------------
    def _read_repair(
        self,
        shard_id: int,
        winner: Replica,
        positives: list[bool],
        pending: "dict[Future, Replica]",
        kind: str,
    ) -> list[bool]:
        """OR in any *settled* peer answer that disagrees with the winner.

        Replicas of one shard hold the same data, so two non-degraded
        answers to the same sub-query should match bit for bit.  When a
        hedged (or raced) peer's already-settled answer disagrees, the
        merge ORs them — membership is one-sided, so the union is the
        only safe reconciliation — and both divergent replicas are
        queued for the next anti-entropy round.  Opportunistic only:
        unsettled peers are never waited on, so read-repair adds no
        latency.
        """
        for fut, rep in list(pending.items()):
            if not fut.done():
                continue
            try:
                resp = fut.result()
            except (ReplicaUnreachableError, ServiceOverloadError,
                    RuntimeError):
                continue
            if resp.degraded:
                continue
            peer = (
                [bool(resp.positive)]
                if kind == "point"
                else [bool(b) for b in resp.positive]
            )
            if len(peer) != len(positives) or peer == positives:
                continue
            merged = [a or b for a, b in zip(positives, peer)]
            self._counters["cluster_read_repairs"].inc()
            with self._lock:
                for name, answer in (
                    (winner.name, positives),
                    (rep.name, peer),
                ):
                    if answer != merged:
                        self._read_repair_queue.append((shard_id, name))
            positives = merged
        return positives

    def drain_read_repairs(self) -> list[tuple[int, str]]:
        """Divergences noticed since the last drain (anti-entropy input)."""
        with self._lock:
            out, self._read_repair_queue = self._read_repair_queue, []
        return out

    # ------------------------------------------------------------------
    # membership (live resharding)
    # ------------------------------------------------------------------
    def add_shard(self, shard_id: int, replicas: list) -> None:
        """Register a new shard's replicas before it takes ownership.

        Called by the resharding driver *before* any segment migrates
        to the shard, so the first dual-ownership read finds the
        replicas already routable.
        """
        if not replicas:
            raise ValueError(f"shard {shard_id} needs at least one replica")
        counter = self.registry.counter(
            "cluster_shard_degraded",
            help="degraded/unreachable merges for this shard",
            labels={"component": "cluster", "shard": str(shard_id)},
        )
        sub_counter = self.registry.counter(
            "cluster_shard_subqueries",
            help="sub-queries issued to this shard",
            labels={"component": "cluster", "shard": str(shard_id)},
        )
        det = self._make_drift(shard_id)
        with self._lock:
            if shard_id in self.replicas:
                raise ValueError(f"shard {shard_id} already registered")
            self.replicas[shard_id] = list(replicas)
            self._rotation[shard_id] = 0
            self._latency[shard_id] = LatencyRecorder(seed=shard_id)
            self._shard_degraded[shard_id] = counter
            self._shard_subqueries[shard_id] = sub_counter
            self._drift[shard_id] = det
        for rep in replicas:
            self.registry.gauge(
                "cluster_replica_health",
                help="0 healthy, 1 suspect, 2 recovering, 3 down",
                labels={"component": "cluster", "replica": rep.name},
            ).set_fn(lambda r=rep: float(r.health.rank()))

    # ------------------------------------------------------------------
    # probing (drives down → recovering → healthy)
    # ------------------------------------------------------------------
    def probe_replica(self, rep: Replica) -> bool:
        """One liveness probe: a tiny point query with a short deadline.

        Any settled answer — degraded included — proves the process is
        alive and reachable; only an unreachable/errored exchange counts
        against it.
        """
        try:
            fut = rep.submit_point(0, deadline_ns=self.probe_deadline_ns)
            fut.result()
        except (ReplicaUnreachableError, ServiceOverloadError,
                RuntimeError):
            rep.health.record_failure()
            self._counters["cluster_probes_failed"].inc()
            # A probe verdict is liveness, not a membership answer: False
            # means "unreachable", and routing treats it pessimistically.
            return False  # lint: allow[one-sided-error]
        rep.health.record_success()
        self._counters["cluster_probes_ok"].inc()
        return True

    def probe_all(self) -> dict[str, bool]:
        """Probe every replica once; returns name -> reachable."""
        return {
            rep.name: self.probe_replica(rep)
            for reps in self.replicas.values()
            for rep in reps
        }

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Cluster-level health: map epoch, per-replica states, counters."""
        return {
            "epoch": self.map.epoch,
            "map": self.map.snapshot(),
            "replicas": {
                rep.name: rep.snapshot()
                for reps in self.replicas.values()
                for rep in reps
            },
            "counters": {
                name: c.value for name, c in self._counters.items()
            },
            "shard_degraded": {
                sid: c.value for sid, c in self._shard_degraded.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClusterRouter(shards={len(self.replicas)}, "
            f"replicas={sum(len(r) for r in self.replicas.values())}, "
            f"epoch={self.map.epoch})"
        )
