"""Cluster topology: segment ownership, epochs, and live migration state.

:class:`ClusterMap` is the router's single source of placement truth.
The 64-bit key domain is cut into ``2**segment_bits`` dyadic segments;
the :class:`~repro.cluster.hashring.HashRing` assigns each a home
shard.  Every placement change bumps ``epoch`` — the same
generation-counter discipline the LSM's ReadViews use — so a test or a
bench can prove which ownership era an answer came from.

Live resharding is a two-epoch protocol per segment:

1. ``begin_migration(segment, dest)`` — the segment enters *dual
   ownership*: reads consult **both** the old and new owner and OR the
   answers, writes go to both.  This is one-sided-safe by construction:
   the old owner still holds every key, so the OR can only add false
   positives while the new owner backfills.  (Epoch bump.)
2. ``commit_migration(segment)`` — the new owner becomes sole owner.
   The old owner's leftover copies are *not* deleted: stale keys in a
   range filter can only cause false positives, never false negatives,
   so lazy cleanup by compaction is free correctness.  (Epoch bump.)

The map is shared mutable state between the router's worker threads and
the resharding driver, so every read/write takes the lock; reads return
immutable tuples.
"""

from __future__ import annotations

import threading

from repro.cluster.hashring import HashRing

__all__ = ["ClusterMap"]

#: Default domain partitioning: 64 segments — fine-grained enough that a
#: 2-8 shard cluster balances, coarse enough that split ranges stay short.
DEFAULT_SEGMENT_BITS = 6

KEY_BITS = 64


class ClusterMap:
    """Segment → shard ownership with epochs and migration state."""

    def __init__(
        self,
        shard_ids,
        *,
        segment_bits: int = DEFAULT_SEGMENT_BITS,
        key_bits: int = KEY_BITS,
        vnodes: int = 64,
        seed: int = 0,
    ) -> None:
        if not 0 < segment_bits <= key_bits:
            raise ValueError(
                f"segment_bits must be in (0, {key_bits}], got {segment_bits}"
            )
        self.segment_bits = segment_bits
        self.key_bits = key_bits
        self.n_segments = 1 << segment_bits
        self._shift = key_bits - segment_bits
        self.ring = HashRing(shard_ids, vnodes=vnodes, seed=seed)
        self._lock = threading.Lock()
        self.epoch = 0
        #: segment -> home shard (materialised from the ring so lookups
        #: are a dict hit and the ring only runs on membership changes).
        self._owner = self.ring.placement(self.n_segments)
        #: segment -> destination shard while a migration is in flight.
        self._migrating: dict[int, int] = {}

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def segment_of(self, key: int) -> int:
        """The segment a key belongs to (its top ``segment_bits`` bits)."""
        if not 0 <= key < (1 << self.key_bits):
            raise ValueError(f"key {key} outside {self.key_bits}-bit domain")
        return key >> self._shift

    def segment_range(self, segment: int) -> tuple[int, int]:
        """The inclusive key range ``[lo, hi]`` a segment covers."""
        if not 0 <= segment < self.n_segments:
            raise ValueError(f"segment {segment} out of range")
        lo = segment << self._shift
        return lo, lo + (1 << self._shift) - 1

    def owners(self, segment: int) -> tuple[int, ...]:
        """Shards that must be consulted for ``segment`` right now.

        One shard normally; two while the segment is mid-migration
        (old owner first).
        """
        with self._lock:
            home = self._owner[segment]
            dest = self._migrating.get(segment)
            if dest is None or dest == home:
                return (home,)
            return (home, dest)

    def split_range(self, lo: int, hi: int) -> list[tuple[int, int, int]]:
        """Split ``[lo, hi]`` at segment boundaries.

        Returns ``[(segment, sub_lo, sub_hi), ...]`` covering the range
        exactly; segments are dyadic so the pieces never overlap.
        """
        if lo > hi:
            raise ValueError(f"invalid range [{lo}, {hi}]")
        first, last = self.segment_of(lo), self.segment_of(hi)
        out = []
        for segment in range(first, last + 1):
            seg_lo, seg_hi = self.segment_range(segment)
            out.append((segment, max(lo, seg_lo), min(hi, seg_hi)))
        return out

    def shard_segments(self, shard_id: int) -> tuple[int, ...]:
        """Segments currently homed on (or migrating to) ``shard_id``."""
        with self._lock:
            return tuple(
                seg
                for seg in range(self.n_segments)
                if self._owner[seg] == shard_id
                or self._migrating.get(seg) == shard_id
            )

    def snapshot(self) -> dict:
        """Epoch + ownership table (observability)."""
        with self._lock:
            return {
                "epoch": self.epoch,
                "segments": self.n_segments,
                "owner": dict(self._owner),
                "migrating": dict(self._migrating),
            }

    # ------------------------------------------------------------------
    # membership & migration
    # ------------------------------------------------------------------
    def add_shard(self, shard_id: int) -> list[int]:
        """Add a shard to the ring; returns the segments it should own.

        Ownership does **not** flip here — the returned segments must be
        migrated one by one (``begin`` → backfill → ``commit``) so
        traffic never reads a shard that hasn't been populated yet.
        """
        self.ring.add_shard(shard_id)
        target = self.ring.placement(self.n_segments)
        with self._lock:
            self.epoch += 1
            return [
                seg
                for seg, owner in target.items()
                if owner == shard_id and self._owner[seg] != shard_id
            ]

    def begin_migration(self, segment: int, dest: int) -> None:
        """Enter dual ownership for ``segment`` (reads/writes hit both)."""
        if dest not in self.ring.shard_ids:
            raise ValueError(f"unknown destination shard {dest}")
        with self._lock:
            if segment in self._migrating:
                raise RuntimeError(f"segment {segment} already migrating")
            if self._owner[segment] == dest:
                raise ValueError(f"segment {segment} already owned by {dest}")
            self._migrating[segment] = dest
            self.epoch += 1

    def commit_migration(self, segment: int) -> None:
        """Flip sole ownership to the migration destination."""
        with self._lock:
            dest = self._migrating.pop(segment, None)
            if dest is None:
                raise RuntimeError(f"segment {segment} is not migrating")
            self._owner[segment] = dest
            self.epoch += 1

    def abort_migration(self, segment: int) -> None:
        """Drop an in-flight migration; the old owner keeps the segment."""
        with self._lock:
            if self._migrating.pop(segment, None) is not None:
                self.epoch += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        snap = self.snapshot()
        return (
            f"ClusterMap(epoch={snap['epoch']}, "
            f"segments={snap['segments']}, "
            f"shards={self.ring.shard_ids}, "
            f"migrating={len(snap['migrating'])})"
        )
