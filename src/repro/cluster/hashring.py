"""Consistent hashing of the key domain onto shards.

The cluster partitions the 64-bit key domain into ``2**segment_bits``
equal dyadic *segments* (contiguous prefix ranges — the same alignment
the filters' dyadic decomposition uses, so a range query splits at
segment boundaries without fragmenting its cover).  Segments, not raw
keys, are the unit of placement: a :class:`HashRing` maps each segment
to the shard owning it, via the classic token ring with virtual nodes.

Why a ring rather than ``segment % n_shards``: adding or removing a
shard must move only ``~segments/n`` segments (the ones whose nearest
token changed), so live resharding migrates a bounded slice of the
domain instead of reshuffling everything.  Tokens come from the
project's seeded splitmix64 mix, so placement is a pure function of
``(shard ids, vnodes, seed)`` — two routers with the same configuration
agree on every owner without coordination.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.hashing.mix64 import mix64

__all__ = ["HashRing"]

#: Virtual nodes per shard: enough that segment counts per shard stay
#: within ~2x of even for small clusters, cheap to rebuild.
DEFAULT_VNODES = 64

_MASK64 = (1 << 64) - 1


class HashRing:
    """Seeded consistent-hash ring over shard identifiers.

    Parameters
    ----------
    shard_ids:
        Initial shard identifiers (small ints by convention).
    vnodes:
        Virtual tokens per shard.
    seed:
        Folded into every token hash, so distinct clusters (or tests)
        get decorrelated placements from the same shard ids.
    """

    def __init__(
        self,
        shard_ids,
        *,
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        self._shards: set[int] = set()
        self._tokens: list[int] = []
        self._token_owner: dict[int, int] = {}
        for sid in shard_ids:
            self.add_shard(sid)
        if not self._shards:
            raise ValueError("a ring needs at least one shard")

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_shard(self, shard_id: int) -> None:
        """Add ``shard_id``'s tokens to the ring (idempotent)."""
        if shard_id in self._shards:
            return
        self._shards.add(shard_id)
        for v in range(self.vnodes):
            token = mix64(
                (self.seed & _MASK64)
                ^ mix64((shard_id << 20) | v)
            )
            # Token collisions are astronomically unlikely; break ties
            # deterministically by lowest shard id so both sides agree.
            prev = self._token_owner.get(token)
            if prev is None:
                self._token_owner[token] = shard_id
            else:
                self._token_owner[token] = min(prev, shard_id)
        self._tokens = sorted(self._token_owner)

    def remove_shard(self, shard_id: int) -> None:
        """Remove ``shard_id``'s tokens (its segments drift to neighbours)."""
        if shard_id not in self._shards:
            return
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.discard(shard_id)
        # Rebuild from scratch: simplest correct behaviour, and rings are
        # tiny (shards x vnodes tokens).
        self._token_owner = {}
        self._tokens = []
        survivors = sorted(self._shards)
        self._shards = set()
        for sid in survivors:
            self.add_shard(sid)

    @property
    def shard_ids(self) -> tuple[int, ...]:
        """All shards on the ring, ascending."""
        return tuple(sorted(self._shards))

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def owner(self, segment: int) -> int:
        """The shard owning ``segment`` (first token clockwise)."""
        point = mix64((self.seed & _MASK64) ^ mix64(segment ^ _MASK64))
        i = bisect_right(self._tokens, point)
        if i == len(self._tokens):
            i = 0  # wrap
        return self._token_owner[self._tokens[i]]

    def placement(self, n_segments: int) -> dict[int, int]:
        """segment -> owner for segments ``0..n_segments-1``."""
        return {seg: self.owner(seg) for seg in range(n_segments)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HashRing(shards={self.shard_ids}, vnodes={self.vnodes}, "
            f"seed={self.seed})"
        )
