"""One shard replica: an independent FilterService + LSMTree + lifecycle.

A replica is the cluster's unit of failure.  Each one owns a private
:class:`~repro.storage.env.StorageEnv` (own blob store, own fault
injector, own stats) sharing the *cluster-wide* simulated clock, an
:class:`~repro.storage.lsm.LSMTree` built with persisted filters, and a
:class:`~repro.service.FilterService` worker pool.  The router never
touches a tree directly — everything goes through the replica's submit
surface, which is where crash and partition faults become visible:

* **crashed** — the process is gone.  The service is stopped without
  drain (its backlog resolves degraded, as PR 3's shutdown contract
  requires) and every later submit raises
  :class:`ReplicaUnreachableError`.  ``restart()`` models the reboot:
  the LSM re-loads its persisted filters through the PR 2 recovery
  state machine (torn/flipped blobs detected, degraded tables answer
  all-positive) and a fresh service starts.
* **partitioned** — the replica is alive but the router can't reach
  it; submits raise :class:`ReplicaUnreachableError` until the
  partition heals.  State inside the replica is untouched, exactly like
  a real network partition.

With ``durability=True`` the replica's tree is a
:class:`~repro.durability.durable_lsm.DurableLSM`: every accepted write
is WAL-logged before it is acknowledged, and ``restart()`` recovers
from *checkpoint + WAL tail* instead of rebuilding filters only.  A
table whose data blob rotted while the process was down comes back
**quarantined**: the replica keeps serving, but every query piece that
overlaps a quarantined key range is forced positive at the submit
surface (the one-sided contract survives data loss), and
``scan_range`` refuses to act as a backfill/repair *source* for those
ranges.  Anti-entropy (:mod:`repro.cluster.repair`) re-fetches the
ranges from a healthy sibling and calls :meth:`clear_quarantine`.

The health state machine (:mod:`repro.cluster.health`) is attached here
but *driven by the router* — health is an observer-side judgement, not
a self-report.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future

from repro.cluster.health import ReplicaHealth
from repro.core.errors import FilterError, TransientIOError
from repro.durability.durable_lsm import DurableLSM
from repro.durability.scrub import Scrubber
from repro.service import FilterService
from repro.storage.env import SimulatedClock, StorageEnv
from repro.storage.faults import FaultInjector
from repro.storage.lsm import LSMTree
from repro.storage.sstable import FilterFactory
from repro.telemetry.context import TraceContext
from repro.telemetry.registry import MetricsRegistry

__all__ = ["Replica", "ReplicaUnreachableError"]


def _force_positive(fut: "Future", forced: frozenset) -> "Future":
    """Overlay quarantine on a settled response: forced pieces read True.

    The wrapped future resolves to the same :class:`ServiceResponse`
    with the quarantined verdict indexes forced positive — degraded
    answers are already all-positive, so the overlay can only *add*
    positives and the one-sided invariant is preserved by construction.
    """
    out: "Future" = Future()

    def _settle(f: "Future") -> None:
        exc = f.exception()
        if exc is not None:
            out.set_exception(exc)
            return
        resp = f.result()
        if isinstance(resp.positive, list):
            resp.positive = [
                True if i in forced else bool(bit)
                for i, bit in enumerate(resp.positive)
            ]
        else:
            resp.positive = True
        out.set_result(resp)

    fut.add_done_callback(_settle)
    return out


class ReplicaUnreachableError(FilterError, ConnectionError):
    """The replica is crashed, partitioned away, or shut down.

    Router-level retryable: fail over to the next replica of the shard.
    Like every failure in this stack it can only make answers *more*
    positive — an unreachable replica contributes ``True``.
    """


class Replica:
    """A single shard replica (see module docstring).

    Parameters
    ----------
    shard_id, replica_id:
        Position in the cluster (labels for metrics and chaos logs).
    filter_factory:
        Per-SSTable filter builder for this replica's tree.
    clock:
        The cluster-shared simulated clock.
    seed:
        Seed for this replica's fault injector (deterministic per
        replica, decorrelated across the fleet by the caller).
    fault_profile:
        Keyword arguments for the :class:`FaultInjector` (probabilities
        and slow-read latency) — the bench's named fault profiles land
        here.
    memtable_capacity, lsm_policy:
        Tree shape knobs.
    durability:
        Build the tree as a :class:`DurableLSM` (WAL + checkpoints);
        ``restart()`` then recovers acknowledged writes, not just
        filters.
    checkpoint_every:
        Auto-checkpoint cadence in writes (durable trees only; 0 =
        only explicit :meth:`checkpoint` calls).
    workers, queue_depth, shed_policy, default_deadline_ns:
        Passed through to each :class:`FilterService` incarnation.
    """

    def __init__(
        self,
        shard_id: int,
        replica_id: int,
        filter_factory: "FilterFactory | None",
        *,
        clock: SimulatedClock,
        seed: int = 0,
        fault_profile: "dict | None" = None,
        memtable_capacity: int = 4096,
        lsm_policy: str = "tiering",
        durability: bool = False,
        checkpoint_every: int = 0,
        workers: int = 2,
        queue_depth: int = 64,
        shed_policy: str = "reject-new",
        default_deadline_ns: "int | None" = 50_000_000,
        health: "ReplicaHealth | None" = None,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.name = f"s{shard_id}r{replica_id}"
        self.clock = clock
        self.injector = FaultInjector(seed, **(fault_profile or {}))
        self.env = StorageEnv(clock=clock, injector=self.injector)
        self.filter_factory = filter_factory
        self.durability = bool(durability)
        self._tree_kwargs = dict(
            memtable_capacity=memtable_capacity,
            policy=lsm_policy,
        )
        self._checkpoint_every = checkpoint_every
        if self.durability:
            self.lsm: LSMTree = DurableLSM(
                filter_factory,
                name=self.name,
                env=self.env,
                checkpoint_every=checkpoint_every,
                **self._tree_kwargs,
            )
        else:
            self.lsm = LSMTree(
                filter_factory,
                env=self.env,
                persist_filters=True,
                **self._tree_kwargs,
            )
        #: The replica's *stable* registry: it outlives every
        #: :class:`FilterService` incarnation, so counters accumulated
        #: before a crash stay reachable (and federated) after the
        #: restart — the restarted service's instruments get-or-create
        #: onto the same objects, which also rules out double-counting.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._service_kwargs = dict(
            workers=workers,
            queue_depth=queue_depth,
            shed_policy=shed_policy,
            default_deadline_ns=default_deadline_ns,
            registry=self.registry,
        )
        self.service: "FilterService | None" = None
        self.health = (
            health if health is not None else ReplicaHealth(clock)
        )
        self._lock = threading.Lock()
        self._crashed = False
        self._partitioned = False
        #: key ranges lost to at-rest corruption, pending anti-entropy
        #: (inclusive ``(lo, hi)`` pairs; overlapping queries force True).
        self._quarantine: list[tuple[int, int]] = []
        self.last_restore_report: "dict | None" = None
        self.crashes = 0
        self.restarts = 0
        self._register_gauges()

    def _register_gauges(self) -> None:
        """Durability gauges on the stable registry (survive restarts).

        The callbacks close over ``self``, not over the tree or service
        object, so swapping ``self.lsm`` on a durable restart re-homes
        them automatically.
        """
        labels = {"component": "replica"}
        self.registry.gauge(
            "replica_wal_lag_records",
            help="writes since the last checkpoint (WAL replay length)",
            labels=labels,
        ).set_fn(self._wal_lag)
        self.registry.gauge(
            "replica_quarantine_ranges",
            help="key ranges quarantined, awaiting anti-entropy",
            labels=labels,
        ).set_fn(lambda: float(len(self.quarantined_ranges())))

    def _wal_lag(self) -> float:
        if not self.durability:
            return 0.0
        return float(self.lsm.durability_stats()["ops_since_checkpoint"])

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Replica":
        """Start (or re-start) the serving pool (idempotent)."""
        with self._lock:
            if self.service is None:
                self.service = FilterService(
                    self.lsm, **self._service_kwargs
                )
            self.service.start()
            self._crashed = False
        return self

    def stop(self) -> None:
        """Graceful shutdown (drains the queue)."""
        with self._lock:
            service = self.service
            self.service = None
        if service is not None:
            service.stop()

    def crash(self) -> None:
        """Kill the replica: fast shutdown, backlog resolved degraded."""
        with self._lock:
            if self._crashed:
                return
            self._crashed = True
            self.crashes += 1
            service = self.service
            self.service = None
        if service is not None:
            service.stop(drain=False)
        self.health.force_down()

    def restart(self, *, rebuild: str = "immediate", replay=()) -> dict:
        """Reboot after a crash: recover persisted filters, start serving.

        ``replay`` is the hinted handoff: ``(key, value)`` writes this
        replica missed while unreachable, applied after recovery but
        *before* serving resumes — a restarted replica must never
        answer with a filter that lacks keys the cluster accepted.

        Returns the :meth:`LSMTree.recover` summary — or, with
        ``durability=True``, the :meth:`DurableLSM.restore` report: the
        in-memory tree is discarded (a crash loses memory) and rebuilt
        from *checkpoint + WAL tail*; tables whose data blobs rotted
        come back as quarantined key ranges that the submit surface
        answers all-positive until anti-entropy refills them.  Health
        stays ``down`` until the router's probes observe the recovery —
        a restarted process earns trust, it is not granted it.
        """
        if self.durability:
            # The restored tree replaces the in-memory one wholesale, so
            # any service still bound to the old tree must go first.
            with self._lock:
                service = self.service
                self.service = None
            if service is not None:
                service.stop(drain=False)
            tree, summary = DurableLSM.restore(
                self.filter_factory,
                env=self.env,
                name=self.name,
                rebuild=rebuild,
                checkpoint_every=self._checkpoint_every,
                **self._tree_kwargs,
            )
            with self._lock:
                self.lsm = tree
                self._quarantine = [
                    (int(lo), int(hi)) for lo, hi in summary["quarantined"]
                ]
                self.last_restore_report = summary
        else:
            summary = self.lsm.recover(rebuild=rebuild)
        for key, value in replay:
            self.lsm.put(key, value)
        with self._lock:
            self._crashed = False
            self.restarts += 1
        self.start()
        return summary

    # ------------------------------------------------------------------
    # fault surface (driven by cluster chaos)
    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        with self._lock:
            return self._crashed

    @property
    def partitioned(self) -> bool:
        with self._lock:
            return self._partitioned

    def set_partitioned(self, value: bool) -> None:
        """Cut (or heal) the network path between router and replica."""
        with self._lock:
            self._partitioned = bool(value)

    def reachable(self) -> bool:
        """True when a submit would be accepted right now."""
        with self._lock:
            return (
                not self._crashed
                and not self._partitioned
                and self.service is not None
            )

    # ------------------------------------------------------------------
    # submit surface (the only path the router uses)
    # ------------------------------------------------------------------
    def _service_or_raise(self) -> FilterService:
        with self._lock:
            if self._crashed:
                raise ReplicaUnreachableError(f"{self.name} is crashed")
            if self._partitioned:
                raise ReplicaUnreachableError(f"{self.name} is partitioned")
            if self.service is None:
                raise ReplicaUnreachableError(f"{self.name} is stopped")
            return self.service

    def submit_range_batch(
        self,
        pairs,
        *,
        deadline_ns: "int | None" = None,
        ctx: "TraceContext | None" = None,
    ) -> "Future":
        """Async batch of range queries against this replica.

        Pieces overlapping a quarantined range are forced positive on
        the settled response — quarantined data may hold the key, so
        only True is a safe answer there.  ``ctx`` is the router's
        propagated trace context, stamped onto the service root span.
        """
        service = self._service_or_raise()
        pairs = [(int(lo), int(hi)) for lo, hi in pairs]
        try:
            fut = service.submit_range_batch(
                pairs, deadline_ns=deadline_ns, ctx=ctx
            )
        except RuntimeError as exc:
            # The service stopped between the check and the submit
            # (crash races are the whole point of this tier).
            raise ReplicaUnreachableError(
                f"{self.name} shut down mid-submit"
            ) from exc
        forced = self._forced_indexes(pairs)
        return _force_positive(fut, forced) if forced else fut

    def submit_point(
        self,
        key: int,
        *,
        deadline_ns: "int | None" = None,
        ctx: "TraceContext | None" = None,
    ) -> "Future":
        """Async point query against this replica (quarantine-aware)."""
        service = self._service_or_raise()
        key = int(key)
        try:
            fut = service.submit_point(key, deadline_ns=deadline_ns, ctx=ctx)
        except RuntimeError as exc:
            raise ReplicaUnreachableError(
                f"{self.name} shut down mid-submit"
            ) from exc
        forced = self._forced_indexes([(key, key)])
        return _force_positive(fut, forced) if forced else fut

    # ------------------------------------------------------------------
    # data plane (writes & backfill reads, not request-path)
    # ------------------------------------------------------------------
    def put(self, key: int, value) -> None:
        """Insert directly into the tree (write path / backfill).

        Writes bypass the service pool (the serving tier is a read
        tier); a crashed or partitioned replica refuses them the same
        way it refuses reads.
        """
        with self._lock:
            if self._crashed:
                raise ReplicaUnreachableError(f"{self.name} is crashed")
            if self._partitioned:
                raise ReplicaUnreachableError(f"{self.name} is partitioned")
        self.lsm.put(key, value)

    def scan_range(self, lo: int, hi: int) -> list:
        """Read live pairs in ``[lo, hi]`` (resharding/repair source).

        Raises :class:`TransientIOError` when the window overlaps a
        quarantined range: this replica's copy is incomplete there, so
        it must not serve as a backfill or anti-entropy source — the
        caller fails over to a sibling.
        """
        lo, hi = int(lo), int(hi)
        with self._lock:
            if self._crashed or self._partitioned:
                raise ReplicaUnreachableError(f"{self.name} is unreachable")
            quarantine = list(self._quarantine)
        for qlo, qhi in quarantine:
            if lo <= qhi and hi >= qlo:
                raise TransientIOError(
                    f"{self.name} holds quarantined data in "
                    f"[{qlo}, {qhi}]; scan of [{lo}, {hi}] refused"
                )
        return self.lsm.range_query(lo, hi)

    # ------------------------------------------------------------------
    # durability control plane
    # ------------------------------------------------------------------
    def _forced_indexes(self, pairs) -> frozenset:
        """Indexes of query pieces overlapping a quarantined range."""
        with self._lock:
            quarantine = list(self._quarantine)
        if not quarantine:
            return frozenset()
        return frozenset(
            i
            for i, (lo, hi) in enumerate(pairs)
            if any(lo <= qhi and hi >= qlo for qlo, qhi in quarantine)
        )

    def quarantined_ranges(self) -> list[tuple[int, int]]:
        """Key ranges currently awaiting anti-entropy repair."""
        with self._lock:
            return list(self._quarantine)

    def clear_quarantine(self, lo: int, hi: int) -> bool:
        """Lift one quarantined range after anti-entropy refilled it."""
        rng = (int(lo), int(hi))
        cleared = False
        with self._lock:
            if rng in self._quarantine:
                self._quarantine.remove(rng)
                cleared = True
        if cleared and self.durability:
            # The tree carries the loss through checkpoints; now that
            # the range is refilled, stop persisting it.
            self.lsm.clear_lost_range(*rng)
        return cleared

    def checkpoint(self) -> "str | None":
        """Write a checkpoint now (durable replicas only)."""
        if not self.durability:
            return None
        return self.lsm.checkpoint()

    def scrub(self, *, repair: bool = True) -> "dict | None":
        """CRC-walk this replica's durable blobs (durable replicas only)."""
        if not self.durability:
            return None
        return Scrubber(self.lsm).scrub(repair=repair)

    def snapshot(self) -> dict:
        """Health + lifecycle counters for cluster observability."""
        snap = {
            "name": self.name,
            "crashed": self.crashed,
            "partitioned": self.partitioned,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "health": self.health.snapshot(),
        }
        if self.durability:
            snap["durability"] = self.lsm.durability_stats()
            snap["quarantine"] = [
                [lo, hi] for lo, hi in self.quarantined_ranges()
            ]
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Replica({self.name}, health={self.health.state}, "
            f"crashed={self.crashed}, partitioned={self.partitioned})"
        )
