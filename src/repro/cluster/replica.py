"""One shard replica: an independent FilterService + LSMTree + lifecycle.

A replica is the cluster's unit of failure.  Each one owns a private
:class:`~repro.storage.env.StorageEnv` (own blob store, own fault
injector, own stats) sharing the *cluster-wide* simulated clock, an
:class:`~repro.storage.lsm.LSMTree` built with persisted filters, and a
:class:`~repro.service.FilterService` worker pool.  The router never
touches a tree directly — everything goes through the replica's submit
surface, which is where crash and partition faults become visible:

* **crashed** — the process is gone.  The service is stopped without
  drain (its backlog resolves degraded, as PR 3's shutdown contract
  requires) and every later submit raises
  :class:`ReplicaUnreachableError`.  ``restart()`` models the reboot:
  the LSM re-loads its persisted filters through the PR 2 recovery
  state machine (torn/flipped blobs detected, degraded tables answer
  all-positive) and a fresh service starts.
* **partitioned** — the replica is alive but the router can't reach
  it; submits raise :class:`ReplicaUnreachableError` until the
  partition heals.  State inside the replica is untouched, exactly like
  a real network partition.

The health state machine (:mod:`repro.cluster.health`) is attached here
but *driven by the router* — health is an observer-side judgement, not
a self-report.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future

from repro.cluster.health import ReplicaHealth
from repro.core.errors import FilterError
from repro.service import FilterService
from repro.storage.env import SimulatedClock, StorageEnv
from repro.storage.faults import FaultInjector
from repro.storage.lsm import LSMTree
from repro.storage.sstable import FilterFactory

__all__ = ["Replica", "ReplicaUnreachableError"]


class ReplicaUnreachableError(FilterError, ConnectionError):
    """The replica is crashed, partitioned away, or shut down.

    Router-level retryable: fail over to the next replica of the shard.
    Like every failure in this stack it can only make answers *more*
    positive — an unreachable replica contributes ``True``.
    """


class Replica:
    """A single shard replica (see module docstring).

    Parameters
    ----------
    shard_id, replica_id:
        Position in the cluster (labels for metrics and chaos logs).
    filter_factory:
        Per-SSTable filter builder for this replica's tree.
    clock:
        The cluster-shared simulated clock.
    seed:
        Seed for this replica's fault injector (deterministic per
        replica, decorrelated across the fleet by the caller).
    fault_profile:
        Keyword arguments for the :class:`FaultInjector` (probabilities
        and slow-read latency) — the bench's named fault profiles land
        here.
    memtable_capacity, lsm_policy:
        Tree shape knobs.
    workers, queue_depth, shed_policy, default_deadline_ns:
        Passed through to each :class:`FilterService` incarnation.
    """

    def __init__(
        self,
        shard_id: int,
        replica_id: int,
        filter_factory: "FilterFactory | None",
        *,
        clock: SimulatedClock,
        seed: int = 0,
        fault_profile: "dict | None" = None,
        memtable_capacity: int = 4096,
        lsm_policy: str = "tiering",
        workers: int = 2,
        queue_depth: int = 64,
        shed_policy: str = "reject-new",
        default_deadline_ns: "int | None" = 50_000_000,
        health: "ReplicaHealth | None" = None,
    ) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.name = f"s{shard_id}r{replica_id}"
        self.clock = clock
        self.injector = FaultInjector(seed, **(fault_profile or {}))
        self.env = StorageEnv(clock=clock, injector=self.injector)
        self.lsm = LSMTree(
            filter_factory,
            memtable_capacity=memtable_capacity,
            policy=lsm_policy,
            env=self.env,
            persist_filters=True,
        )
        self._service_kwargs = dict(
            workers=workers,
            queue_depth=queue_depth,
            shed_policy=shed_policy,
            default_deadline_ns=default_deadline_ns,
        )
        self.service: "FilterService | None" = None
        self.health = (
            health if health is not None else ReplicaHealth(clock)
        )
        self._lock = threading.Lock()
        self._crashed = False
        self._partitioned = False
        self.crashes = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Replica":
        """Start (or re-start) the serving pool (idempotent)."""
        with self._lock:
            if self.service is None:
                self.service = FilterService(
                    self.lsm, **self._service_kwargs
                )
            self.service.start()
            self._crashed = False
        return self

    def stop(self) -> None:
        """Graceful shutdown (drains the queue)."""
        with self._lock:
            service = self.service
            self.service = None
        if service is not None:
            service.stop()

    def crash(self) -> None:
        """Kill the replica: fast shutdown, backlog resolved degraded."""
        with self._lock:
            if self._crashed:
                return
            self._crashed = True
            self.crashes += 1
            service = self.service
            self.service = None
        if service is not None:
            service.stop(drain=False)
        self.health.force_down()

    def restart(self, *, rebuild: str = "immediate", replay=()) -> dict:
        """Reboot after a crash: recover persisted filters, start serving.

        ``replay`` is the hinted handoff: ``(key, value)`` writes this
        replica missed while unreachable, applied after recovery but
        *before* serving resumes — a restarted replica must never
        answer with a filter that lacks keys the cluster accepted.

        Returns the :meth:`LSMTree.recover` summary.  Health stays
        ``down`` until the router's probes observe the recovery — a
        restarted process earns trust, it is not granted it.
        """
        summary = self.lsm.recover(rebuild=rebuild)
        for key, value in replay:
            self.lsm.put(key, value)
        with self._lock:
            self._crashed = False
            self.restarts += 1
        self.start()
        return summary

    # ------------------------------------------------------------------
    # fault surface (driven by cluster chaos)
    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        with self._lock:
            return self._crashed

    @property
    def partitioned(self) -> bool:
        with self._lock:
            return self._partitioned

    def set_partitioned(self, value: bool) -> None:
        """Cut (or heal) the network path between router and replica."""
        with self._lock:
            self._partitioned = bool(value)

    def reachable(self) -> bool:
        """True when a submit would be accepted right now."""
        with self._lock:
            return (
                not self._crashed
                and not self._partitioned
                and self.service is not None
            )

    # ------------------------------------------------------------------
    # submit surface (the only path the router uses)
    # ------------------------------------------------------------------
    def _service_or_raise(self) -> FilterService:
        with self._lock:
            if self._crashed:
                raise ReplicaUnreachableError(f"{self.name} is crashed")
            if self._partitioned:
                raise ReplicaUnreachableError(f"{self.name} is partitioned")
            if self.service is None:
                raise ReplicaUnreachableError(f"{self.name} is stopped")
            return self.service

    def submit_range_batch(
        self, pairs, *, deadline_ns: "int | None" = None
    ) -> "Future":
        """Async batch of range queries against this replica."""
        service = self._service_or_raise()
        try:
            return service.submit_range_batch(pairs, deadline_ns=deadline_ns)
        except RuntimeError as exc:
            # The service stopped between the check and the submit
            # (crash races are the whole point of this tier).
            raise ReplicaUnreachableError(
                f"{self.name} shut down mid-submit"
            ) from exc

    def submit_point(
        self, key: int, *, deadline_ns: "int | None" = None
    ) -> "Future":
        """Async point query against this replica."""
        service = self._service_or_raise()
        try:
            return service.submit_point(key, deadline_ns=deadline_ns)
        except RuntimeError as exc:
            raise ReplicaUnreachableError(
                f"{self.name} shut down mid-submit"
            ) from exc

    # ------------------------------------------------------------------
    # data plane (writes & backfill reads, not request-path)
    # ------------------------------------------------------------------
    def put(self, key: int, value) -> None:
        """Insert directly into the tree (write path / backfill).

        Writes bypass the service pool (the serving tier is a read
        tier); a crashed or partitioned replica refuses them the same
        way it refuses reads.
        """
        with self._lock:
            if self._crashed:
                raise ReplicaUnreachableError(f"{self.name} is crashed")
            if self._partitioned:
                raise ReplicaUnreachableError(f"{self.name} is partitioned")
        self.lsm.put(key, value)

    def scan_range(self, lo: int, hi: int) -> list:
        """Read live pairs in ``[lo, hi]`` (resharding backfill source)."""
        with self._lock:
            if self._crashed or self._partitioned:
                raise ReplicaUnreachableError(f"{self.name} is unreachable")
        return self.lsm.range_query(lo, hi)

    def snapshot(self) -> dict:
        """Health + lifecycle counters for cluster observability."""
        return {
            "name": self.name,
            "crashed": self.crashed,
            "partitioned": self.partitioned,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "health": self.health.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Replica({self.name}, health={self.health.state}, "
            f"crashed={self.crashed}, partitioned={self.partitioned})"
        )
