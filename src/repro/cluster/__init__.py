"""Sharded, replicated filter cluster with failover and live resharding.

The cluster tier turns one :class:`~repro.service.FilterService` into a
fleet: the key domain is consistent-hashed over shards
(:mod:`~repro.cluster.hashring`, :mod:`~repro.cluster.topology`), each
shard is served by independent replicas
(:mod:`~repro.cluster.replica`), and a router
(:mod:`~repro.cluster.router`) scatter/gathers range queries with
health-ranked failover and p99-derived hedging.  The whole tier keeps
the stack's one invariant: **no path, however degraded, ever answers a
false negative.**  :mod:`~repro.cluster.chaos` drives seeded
cluster-level fault schedules against it.
"""

from repro.cluster.chaos import ClusterChaos
from repro.cluster.cluster import FilterCluster
from repro.cluster.hashring import HashRing
from repro.cluster.health import ReplicaHealth
from repro.cluster.repair import AntiEntropy
from repro.cluster.replica import Replica, ReplicaUnreachableError
from repro.cluster.router import ClusterResponse, ClusterRouter, ShardOutcome
from repro.cluster.topology import ClusterMap

__all__ = [
    "AntiEntropy",
    "ClusterChaos",
    "ClusterMap",
    "ClusterResponse",
    "ClusterRouter",
    "FilterCluster",
    "HashRing",
    "Replica",
    "ReplicaHealth",
    "ReplicaUnreachableError",
    "ShardOutcome",
]
