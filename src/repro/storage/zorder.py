"""Z-order (Morton) curve utilities — the paper's Use Case 3 transform.

"Since the keys in R-trees are 2-dimensional, we first transfer them to
1-dimensional by Z-order [interleave the binary representations of x and
y] and then store them in the range filters."

Provides bit interleaving for 2-D points and the decomposition of an
axis-aligned query rectangle into Z-contiguous intervals, so a spatial
query becomes a handful of 1-D range-filter probes.  The decomposition is
the quadtree refinement of the rectangle: every emitted quadtree cell is a
single Z-prefix, hence a contiguous Z interval; adjacent intervals are
merged and refinement is capped by ``max_ranges`` with a conservative
coarse cover as the fallback.
"""

from __future__ import annotations

__all__ = [
    "interleave",
    "deinterleave",
    "rect_to_zranges",
]

_B = [
    0x5555555555555555,
    0x3333333333333333,
    0x0F0F0F0F0F0F0F0F,
    0x00FF00FF00FF00FF,
    0x0000FFFF0000FFFF,
]


def _part1by1(x: int) -> int:
    """Spread the low 32 bits of ``x`` into the even bit positions."""
    x &= 0xFFFFFFFF
    x = (x | (x << 16)) & _B[4]
    x = (x | (x << 8)) & _B[3]
    x = (x | (x << 4)) & _B[2]
    x = (x | (x << 2)) & _B[1]
    x = (x | (x << 1)) & _B[0]
    return x


def _compact1by1(x: int) -> int:
    """Inverse of :func:`_part1by1`."""
    x &= _B[0]
    x = (x | (x >> 1)) & _B[1]
    x = (x | (x >> 2)) & _B[2]
    x = (x | (x >> 4)) & _B[3]
    x = (x | (x >> 8)) & _B[4]
    x = (x | (x >> 16)) & 0xFFFFFFFF
    return x


def interleave(x: int, y: int, coord_bits: int = 32) -> int:
    """Morton code of ``(x, y)``: ``x`` in even bits, ``y`` in odd bits."""
    top = (1 << coord_bits) - 1
    if not (0 <= x <= top and 0 <= y <= top):
        raise ValueError(
            f"coordinates ({x}, {y}) outside {coord_bits}-bit domain"
        )
    return _part1by1(x) | (_part1by1(y) << 1)


def deinterleave(z: int) -> tuple[int, int]:
    """Inverse of :func:`interleave`."""
    if z < 0:
        raise ValueError(f"z must be non-negative, got {z}")
    return _compact1by1(z), _compact1by1(z >> 1)


def rect_to_zranges(
    x_lo: int,
    x_hi: int,
    y_lo: int,
    y_hi: int,
    coord_bits: int = 32,
    max_ranges: int = 64,
) -> list[tuple[int, int]]:
    """Z-interval cover of the rectangle ``[x_lo, x_hi] × [y_lo, y_hi]``.

    Quadtree refinement: a cell fully inside the rectangle is one
    Z-interval (its Z-prefix); a partially covered cell splits into four.
    Refinement stops when further splitting would exceed ``max_ranges``
    intervals, at which point partially covered cells are emitted whole —
    a superset cover, so range-filter probes stay one-sided (no false
    negatives; possibly more false positives).

    Returns merged, sorted, inclusive ``(z_lo, z_hi)`` intervals.
    """
    if x_lo > x_hi or y_lo > y_hi:
        raise ValueError("empty rectangle")
    top = (1 << coord_bits) - 1
    if x_hi > top or y_hi > top or x_lo < 0 or y_lo < 0:
        raise ValueError("rectangle outside the coordinate domain")

    intervals: list[tuple[int, int]] = []
    # Each cell is (x0, y0, size_log2); its Z codes are one aligned block.
    stack = [(0, 0, coord_bits)]
    while stack:
        x0, y0, log = stack.pop()
        size = 1 << log
        x1, y1 = x0 + size - 1, y0 + size - 1
        if x1 < x_lo or x0 > x_hi or y1 < y_lo or y0 > y_hi:
            continue
        z0 = interleave(x0, y0, coord_bits)
        covered = x_lo <= x0 and x1 <= x_hi and y_lo <= y0 and y1 <= y_hi
        if covered or log == 0 or len(intervals) + len(stack) >= max_ranges:
            intervals.append((z0, z0 + (1 << (2 * log)) - 1))
            continue
        half = size // 2
        for dx in (0, half):
            for dy in (0, half):
                stack.append((x0 + dx, y0 + dy, log - 1))
    intervals.sort()
    merged: list[tuple[int, int]] = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged
