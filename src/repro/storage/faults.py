"""Deterministic, seeded fault injection for the storage layer.

The chaos harness needs the storage substrate to *misbehave on demand*
— and reproducibly, so a failing property-test case shrinks to a seed.
:class:`FaultInjector` is the single source of misbehaviour, plugged
into :class:`~repro.storage.env.StorageEnv`.  Four fault types, matching
what real disks and object stores do:

* **transient read errors** — the read raises
  :class:`~repro.core.errors.TransientIOError`; the data is intact and a
  retry may succeed.  Drawn per second-level read and per blob read.
* **torn (partial) writes** — a persisted blob is silently truncated at
  a random byte; detected later by length/CRC checks at load time.
* **bit flips** — one random bit of a persisted blob is inverted at
  rest (written damaged); detected by the v2 CRC32 at load time.
* **torn appends** — a blob *append* (WAL group-append) persists only a
  prefix of the appended suffix; the env raises
  :class:`~repro.core.errors.TornAppendError` so the records are never
  acknowledged, and WAL replay truncates the torn tail.
* **at-rest rot** — :meth:`rot_bit` picks the seeded bit position that
  :meth:`~repro.storage.env.StorageEnv.rot_blob` inverts in an
  already-stored blob, modelling cold-data bit rot the scrubber exists
  to catch.
* **slow reads** — the read succeeds but costs extra *simulated*
  latency (``slow_read_ns``), the storage-side stall that deadline
  budgets and the serving layer's circuit breaker exist to absorb.  A
  slow read is correct data arriving late, so it is charged to the
  simulated clock rather than raised.

Two triggering modes compose:

* probabilistic — per-operation probabilities (``transient_read_p``,
  ``torn_write_p``, ``bit_flip_p``) drawn from a seeded PRNG, for chaos
  sweeps;
* armed — ``arm_transient_reads(n, after=k)`` / ``arm_torn_write()`` /
  ``arm_bit_flip()`` force the fault on specific upcoming operations,
  for exact regression tests (e.g. "a transient fault mid-batch").

The injector only *decides and mutates*; all counting lives in
:class:`~repro.storage.env.IoStats` so a bench reads one stats object.
"""

from __future__ import annotations

import random
import threading

from repro.core.errors import TransientIOError

__all__ = ["FaultInjector"]

_MASK64 = (1 << 64) - 1


class FaultInjector:
    """Seeded source of storage faults (see module docstring).

    Parameters
    ----------
    seed:
        PRNG seed; two injectors with equal seeds and probabilities
        produce identical fault sequences for identical op sequences.
    transient_read_p:
        Probability that any one second-level or blob read raises
        :class:`TransientIOError`.
    torn_write_p:
        Probability that a blob write is truncated at a random byte.
    torn_append_p:
        Probability that a blob *append* persists only a prefix of the
        appended suffix (and raises
        :class:`~repro.core.errors.TornAppendError`).
    bit_flip_p:
        Probability that a blob write lands with one random bit flipped.
    slow_read_p:
        Probability that any one second-level or blob read succeeds but
        costs ``slow_read_ns`` extra simulated latency.
    slow_read_ns:
        Extra simulated nanoseconds charged per slow read (default 50 ms
        — a deep queue or a degraded disk, not a refusal).
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        transient_read_p: float = 0.0,
        torn_write_p: float = 0.0,
        bit_flip_p: float = 0.0,
        torn_append_p: float = 0.0,
        slow_read_p: float = 0.0,
        slow_read_ns: int = 50_000_000,
    ) -> None:
        for name, p in (
            ("transient_read_p", transient_read_p),
            ("torn_write_p", torn_write_p),
            ("bit_flip_p", bit_flip_p),
            ("torn_append_p", torn_append_p),
            ("slow_read_p", slow_read_p),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if slow_read_ns < 0:
            raise ValueError(f"slow_read_ns must be >= 0, got {slow_read_ns}")
        self.seed = seed
        self.transient_read_p = transient_read_p
        self.torn_write_p = torn_write_p
        self.bit_flip_p = bit_flip_p
        self.torn_append_p = torn_append_p
        self.slow_read_p = slow_read_p
        self.slow_read_ns = slow_read_ns
        self._rng = random.Random(seed)
        # Backoff jitter draws from its own stream: jittering retries
        # must not shift the fault sequence (or vice versa), or every
        # seeded chaos scenario would change when one retry is added.
        self._jitter_rng = random.Random((seed ^ 0x9E3779B97F4A7C15) & _MASK64)
        # The injector is shared by every worker of a concurrent service;
        # the PRNG and armed counters must not be torn by racing reads.
        self._lock = threading.Lock()
        # Armed faults: (skip, count) — skip ops pass unharmed, then
        # `count` consecutive ops fault.
        self._armed_transient_after = 0
        self._armed_transient = 0
        self._armed_torn = 0
        self._armed_flip = 0
        self._armed_torn_append = 0

    # ------------------------------------------------------------------
    # arming (deterministic single faults for regression tests)
    # ------------------------------------------------------------------
    def arm_transient_reads(self, count: int = 1, *, after: int = 0) -> None:
        """Force the next ``count`` reads to fail, skipping ``after`` first.

        Each armed failure fires exactly once, so a retry of the same
        logical read succeeds (unless more failures remain armed) —
        precisely the "transient" contract.
        """
        if count < 0 or after < 0:
            raise ValueError("count and after must be non-negative")
        with self._lock:
            self._armed_transient_after = after
            self._armed_transient = count

    def arm_torn_write(self, count: int = 1) -> None:
        """Truncate the next ``count`` blob writes at a random byte."""
        with self._lock:
            self._armed_torn = count

    def arm_bit_flip(self, count: int = 1) -> None:
        """Flip one random bit in each of the next ``count`` blob writes."""
        with self._lock:
            self._armed_flip = count

    def arm_torn_append(self, count: int = 1) -> None:
        """Tear the next ``count`` blob appends mid-suffix.

        Each armed tear persists a strict prefix of the appended bytes
        and makes :meth:`~repro.storage.env.StorageEnv.append_blob`
        raise :class:`~repro.core.errors.TornAppendError` — the
        deterministic "process killed mid-append" for WAL tests.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            self._armed_torn_append = count

    def disarm(self) -> None:
        """Cancel every armed fault (leftover armament from a chaos
        schedule must not outlive the storm it belongs to)."""
        with self._lock:
            self._armed_transient_after = 0
            self._armed_transient = 0
            self._armed_torn = 0
            self._armed_flip = 0
            self._armed_torn_append = 0

    # ------------------------------------------------------------------
    # decision points (called by StorageEnv)
    # ------------------------------------------------------------------
    def check_read(self, what: str = "read") -> None:
        """Raise :class:`TransientIOError` if this read should fail."""
        with self._lock:
            if self._armed_transient_after > 0:
                self._armed_transient_after -= 1
                return
            if self._armed_transient > 0:
                self._armed_transient -= 1
                raise TransientIOError(f"injected transient fault on {what}")
            if (
                self.transient_read_p
                and self._rng.random() < self.transient_read_p
            ):
                raise TransientIOError(f"injected transient fault on {what}")

    def read_latency_ns(self, what: str = "read") -> int:
        """Extra simulated latency for this read (0 when it is not slow).

        Called by :class:`~repro.storage.env.StorageEnv` after a read is
        allowed to succeed; the env charges the returned nanoseconds to
        the simulated clock and counts the stall in
        ``stats.slow_reads`` / ``stats.slow_read_ns``.
        """
        with self._lock:
            if self.slow_read_p and self._rng.random() < self.slow_read_p:
                return self.slow_read_ns
        return 0

    def jitter_backoff(self, delay_ns: int) -> int:
        """Equal-jitter a retry backoff delay (seeded, deterministic).

        Returns a value in ``[delay_ns // 2, delay_ns]``: half the
        deterministic exponential delay is kept as a floor, the rest is
        randomised so concurrent retriers that failed together don't
        retry together (the classic stampede an unjittered
        ``base << attempt`` schedule produces).  Draws come from the
        jitter stream, not the fault stream, so arming or observing
        faults never shifts the jitter sequence and vice versa.
        """
        if delay_ns <= 0:
            return 0
        half = delay_ns // 2
        with self._lock:
            return half + self._jitter_rng.randrange(delay_ns - half + 1)

    def mangle_write(self, data: bytes) -> "tuple[bytes, str | None]":
        """Possibly damage a blob about to be persisted.

        Returns ``(stored_bytes, fault)`` where ``fault`` is ``"torn"``,
        ``"flip"`` or ``None``.  Torn writes keep a strict prefix (never
        the full blob, never preferentially empty); bit flips invert one
        uniformly chosen bit.  At most one fault per write, torn taking
        precedence, so counters stay attributable.
        """
        with self._lock:
            if self._armed_torn > 0:
                self._armed_torn -= 1
                torn = True
            else:
                torn = bool(
                    self.torn_write_p
                    and self._rng.random() < self.torn_write_p
                )
            if torn and len(data) > 0:
                cut = self._rng.randrange(len(data))
                return data[:cut], "torn"
            if self._armed_flip > 0:
                self._armed_flip -= 1
                flip = True
            else:
                flip = bool(
                    self.bit_flip_p and self._rng.random() < self.bit_flip_p
                )
            if flip and len(data) > 0:
                bit = self._rng.randrange(len(data) * 8)
                damaged = bytearray(data)
                damaged[bit // 8] ^= 1 << (bit % 8)
                return bytes(damaged), "flip"
            return data, None

    def mangle_append(self, suffix: bytes) -> "tuple[bytes, bool]":
        """Possibly tear a blob append; returns ``(stored_suffix, torn)``.

        A torn append keeps a strict prefix of the *suffix* only — bytes
        already in the blob are never touched, which is what makes
        appends the right primitive for a WAL (a rewrite could tear
        previously acknowledged records; an append cannot).
        """
        with self._lock:
            if self._armed_torn_append > 0:
                self._armed_torn_append -= 1
                torn = True
            else:
                torn = bool(
                    self.torn_append_p
                    and self._rng.random() < self.torn_append_p
                )
            if torn and len(suffix) > 0:
                cut = self._rng.randrange(len(suffix))
                return suffix[:cut], True
            return suffix, False

    def rot_bit(self, n_bits: int) -> int:
        """Seeded bit position for at-rest rot (``StorageEnv.rot_blob``).

        Drawn from the fault stream so a chaos schedule's rot locations
        replay from the seed alone.
        """
        if n_bits <= 0:
            raise ValueError(f"rot_bit needs a non-empty blob, got {n_bits}")
        with self._lock:
            return self._rng.randrange(n_bits)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(seed={self.seed}, "
            f"transient={self.transient_read_p}, "
            f"torn={self.torn_write_p}, flip={self.bit_flip_p})"
        )
