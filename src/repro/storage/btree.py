"""B+tree with per-leaf range filters — the paper's Use Case 2.

"Typically, a B+tree has a large fanout and its leaf nodes are not cached
in memory.  To save unnecessary leaf node accesses, we can maintain a
range filter in memory for each leaf node so that we visit a particular
leaf node only when the corresponding range filter returns positive."

Internal nodes are in-memory; each leaf access is a simulated
second-level read (``StorageEnv``).  Every leaf owns an optional range
filter, rebuilt on leaf split; empty point and range queries that the
filter rejects cost zero I/O.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterable

import numpy as np

from repro.filters.base import RangeFilter
from repro.storage.env import StorageEnv

__all__ = ["BPlusTree"]


class _Leaf:
    __slots__ = ("keys", "values", "next", "filter")

    def __init__(self) -> None:
        self.keys: list[int] = []
        self.values: list[Any] = []
        self.next: "_Leaf | None" = None
        self.filter: RangeFilter | None = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        #: children[i] holds keys < keys[i]; children[-1] holds the rest.
        self.keys: list[int] = []
        self.children: list[Any] = []


class BPlusTree:
    """Order-``fanout`` B+tree with filter-guarded leaf reads."""

    def __init__(
        self,
        fanout: int = 64,
        filter_factory: Callable[[np.ndarray], "RangeFilter | None"] | None = None,
        env: StorageEnv | None = None,
    ) -> None:
        if fanout < 4:
            raise ValueError(f"fanout must be >= 4, got {fanout}")
        self.fanout = fanout
        self.filter_factory = filter_factory
        self.env = env if env is not None else StorageEnv()
        self._root: _Leaf | _Internal = _Leaf()
        self.n_keys = 0

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key``; splits propagate to the root."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(self, node, key: int, value: Any):
        if isinstance(node, _Leaf):
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
            else:
                node.keys.insert(i, key)
                node.values.insert(i, value)
                self.n_keys += 1
            if len(node.keys) > self.fanout:
                return self._split_leaf(node)
            self._note_leaf_insert(node, key)
            return None
        i = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[i], key, value)
        if split is not None:
            sep, right = split
            node.keys.insert(i, sep)
            node.children.insert(i + 1, right)
            if len(node.children) > self.fanout:
                return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        self._refresh_filter(leaf)
        self._refresh_filter(right)
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.children) // 2
        right = _Internal()
        sep = node.keys[mid - 1]
        right.keys = node.keys[mid:]
        right.children = node.children[mid:]
        node.keys = node.keys[: mid - 1]
        node.children = node.children[:mid]
        return sep, right

    def _refresh_filter(self, leaf: _Leaf) -> None:
        """Rebuild the leaf's filter (the paper rebuilds on maintenance)."""
        if self.filter_factory is not None and leaf.keys:
            leaf.filter = self.filter_factory(
                np.array(leaf.keys, dtype=np.uint64)
            )

    def _note_leaf_insert(self, leaf: _Leaf, key: int) -> None:
        """Keep the leaf filter consistent after an in-place insert.

        Filters that support incremental ``insert`` (REncoder, Bloom) are
        updated in place; others are dropped until :meth:`rebuild_filters`
        (an absent filter means unguarded — correct but unfiltered — reads).
        """
        if leaf.filter is None:
            return
        insert = getattr(leaf.filter, "insert", None)
        if callable(insert):
            insert(key)
        else:
            leaf.filter = None

    def rebuild_filters(self) -> None:
        """Rebuild every leaf filter (e.g. after a bulk insert phase)."""
        for leaf in self.leaves():
            self._refresh_filter(leaf)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _find_leaf(self, key: int) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[bisect.bisect_right(node.keys, key)]
        return node

    def get(self, key: int) -> tuple[bool, Any]:
        """Filter-guarded point lookup."""
        leaf = self._find_leaf(key)
        if leaf.filter is not None and not leaf.filter.query_point(key):
            return False, None
        i = bisect.bisect_left(leaf.keys, key)
        found = i < len(leaf.keys) and leaf.keys[i] == key
        self.env.read(useful=found)
        return (True, leaf.values[i]) if found else (False, None)

    def range_query(self, lo: int, hi: int) -> list[tuple[int, Any]]:
        """Filter-guarded range scan across the leaf chain."""
        if lo > hi:
            raise ValueError(f"invalid range [{lo}, {hi}]")
        out: list[tuple[int, Any]] = []
        leaf: _Leaf | None = self._find_leaf(lo)
        while leaf is not None and (not leaf.keys or leaf.keys[0] <= hi):
            if leaf.keys:
                if leaf.filter is None or leaf.filter.query_range(lo, hi):
                    left = bisect.bisect_left(leaf.keys, lo)
                    right = bisect.bisect_right(leaf.keys, hi)
                    self.env.read(useful=right > left)
                    out.extend(
                        (leaf.keys[i], leaf.values[i])
                        for i in range(left, right)
                    )
            leaf = leaf.next
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def leaves(self) -> Iterable[_Leaf]:
        """All leaves, left to right (via the leaf chain)."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        while node is not None:
            yield node
            node = node.next

    def filter_bits(self) -> int:
        """Total memory spent on leaf filters."""
        return sum(
            leaf.filter.size_in_bits()
            for leaf in self.leaves()
            if leaf.filter is not None
        )

    def __len__(self) -> int:
        return self.n_keys
