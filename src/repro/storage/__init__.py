"""Storage substrates the paper's use cases run on: a leveling LSM-tree
(Use Case 1), a B+tree with leaf filters (Use Case 2), an R-tree with
Z-order leaf filters (Use Case 3), and the shared two-level cost model."""

from repro.storage.btree import BPlusTree
from repro.storage.env import IoStats, StorageEnv
from repro.storage.faults import FaultInjector
from repro.storage.lsm import LSMTree
from repro.storage.manifest import Manifest, ManifestRecord
from repro.storage.memtable import TOMBSTONE, MemTable
from repro.storage.rtree import RTree
from repro.storage.sstable import SSTable
from repro.storage.zorder import deinterleave, interleave, rect_to_zranges

__all__ = [
    "BPlusTree",
    "IoStats",
    "StorageEnv",
    "FaultInjector",
    "LSMTree",
    "Manifest",
    "ManifestRecord",
    "TOMBSTONE",
    "MemTable",
    "RTree",
    "SSTable",
    "deinterleave",
    "interleave",
    "rect_to_zranges",
]
