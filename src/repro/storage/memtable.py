"""In-memory write buffer of the LSM-tree (sorted, binary-searched).

A simple sorted-array memtable: O(log n) lookups, O(n) inserts (fine at
memtable sizes), O(log n + k) range scans.  Deletes are tombstones so they
survive the flush and shadow older SSTable entries, as in any LSM-tree.

Thread safety: every operation holds the memtable's own lock, and the
iteration methods (``items`` / ``range_items``) snapshot under it before
yielding — a writer racing a reader can therefore never tear the paired
key/value arrays or invalidate an in-progress scan.  The LSM-tree
additionally freezes memtables at flush time (the active buffer is
swapped for a fresh one), so a frozen memtable is immutable by
construction and reads on it are contention-free.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterator

__all__ = ["MemTable", "TOMBSTONE"]


class _Tombstone:
    """Sentinel marking a deleted key."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<tombstone>"


TOMBSTONE = _Tombstone()


class MemTable:
    """Sorted write buffer with tombstone deletes."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._keys: list[int] = []
        self._values: list[Any] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def full(self) -> bool:
        return len(self._keys) >= self.capacity

    def put(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key``."""
        with self._lock:
            i = bisect.bisect_left(self._keys, key)
            if i < len(self._keys) and self._keys[i] == key:
                self._values[i] = value
            else:
                self._keys.insert(i, key)
                self._values.insert(i, value)

    def delete(self, key: int) -> None:
        """Mark ``key`` deleted (tombstone)."""
        self.put(key, TOMBSTONE)

    def get(self, key: int) -> tuple[bool, Any]:
        """``(found, value)``; a tombstone counts as found with TOMBSTONE."""
        with self._lock:
            i = bisect.bisect_left(self._keys, key)
            if i < len(self._keys) and self._keys[i] == key:
                return True, self._values[i]
            return False, None

    def range_items(self, lo: int, hi: int) -> Iterator[tuple[int, Any]]:
        """All (key, value) pairs with ``lo <= key <= hi``, ascending.

        Tombstones are yielded too; the LSM read path filters them after
        merging across levels.  The matching slice is copied under the
        lock, so the iterator is immune to concurrent inserts.
        """
        with self._lock:
            left = bisect.bisect_left(self._keys, lo)
            right = bisect.bisect_right(self._keys, hi)
            pairs = list(
                zip(self._keys[left:right], self._values[left:right])
            )
        return iter(pairs)

    def items(self) -> Iterator[tuple[int, Any]]:
        """All pairs in key order (used by flush); a consistent snapshot."""
        with self._lock:
            return iter(list(zip(self._keys, self._values)))

    def clear(self) -> None:
        """Drop all entries (after a flush)."""
        with self._lock:
            self._keys.clear()
            self._values.clear()
