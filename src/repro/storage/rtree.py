"""R-tree with per-leaf Z-order range filters — the paper's Use Case 3.

An STR (sort-tile-recursive) bulk-loaded R-tree over 2-D integer points.
Each leaf keeps, besides its MBR, a range filter built over the Z-order
codes of its points.  A rectangle query is decomposed into Z intervals
(:func:`repro.storage.zorder.rect_to_zranges`); a leaf whose MBR
intersects the query is *read* (simulated second-level access) only if its
filter passes at least one Z interval — empty spatial queries then cost no
I/O, exactly the benefit the paper describes for R-trees.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

import numpy as np

from repro.filters.base import RangeFilter
from repro.storage.env import StorageEnv
from repro.storage.zorder import interleave, rect_to_zranges

__all__ = ["RTree"]


class _RLeaf:
    __slots__ = ("points", "values", "mbr", "filter")

    def __init__(self, points, values, filter_) -> None:
        self.points = points  # list of (x, y)
        self.values = values
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        self.mbr = (min(xs), max(xs), min(ys), max(ys))
        self.filter = filter_


class _RNode:
    __slots__ = ("children", "mbr")

    def __init__(self, children) -> None:
        self.children = children
        self.mbr = (
            min(c.mbr[0] for c in children),
            max(c.mbr[1] for c in children),
            min(c.mbr[2] for c in children),
            max(c.mbr[3] for c in children),
        )


def _intersects(a, b) -> bool:
    return not (a[1] < b[0] or a[0] > b[1] or a[3] < b[2] or a[2] > b[3])


class RTree:
    """STR bulk-loaded R-tree with filter-guarded leaf reads."""

    def __init__(
        self,
        points: Sequence[tuple[int, int]],
        values: Sequence[Any] | None = None,
        *,
        leaf_capacity: int = 64,
        fanout: int = 16,
        coord_bits: int = 32,
        filter_factory: Callable[[np.ndarray], "RangeFilter | None"] | None = None,
        env: StorageEnv | None = None,
        max_zranges: int = 256,
    ) -> None:
        if leaf_capacity < 1 or fanout < 2:
            raise ValueError("leaf_capacity must be >= 1 and fanout >= 2")
        if not points:
            raise ValueError("RTree requires at least one point")
        self.coord_bits = coord_bits
        self.env = env if env is not None else StorageEnv()
        self.max_zranges = max_zranges
        self.n_points = len(points)
        if values is None:
            values = [None] * len(points)
        if len(values) != len(points):
            raise ValueError("points and values must have equal length")

        leaves = self._str_pack(list(zip(points, values)), leaf_capacity, filter_factory)
        self._root = self._build_upward(leaves, fanout)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _str_pack(self, items, leaf_capacity, filter_factory):
        """Sort-Tile-Recursive packing into leaves."""
        n = len(items)
        n_leaves = math.ceil(n / leaf_capacity)
        n_slices = max(1, math.ceil(math.sqrt(n_leaves)))
        per_slice = math.ceil(n / n_slices)
        items = sorted(items, key=lambda iv: iv[0][0])  # by x
        leaves = []
        for s in range(0, n, per_slice):
            chunk = sorted(items[s : s + per_slice], key=lambda iv: iv[0][1])
            for t in range(0, len(chunk), leaf_capacity):
                group = chunk[t : t + leaf_capacity]
                pts = [p for p, _ in group]
                vals = [v for _, v in group]
                filt = None
                if filter_factory is not None:
                    zcodes = np.array(
                        sorted(
                            interleave(x, y, self.coord_bits) for x, y in pts
                        ),
                        dtype=np.uint64,
                    )
                    filt = filter_factory(np.unique(zcodes))
                leaves.append(_RLeaf(pts, vals, filt))
        return leaves

    def _build_upward(self, nodes, fanout):
        while len(nodes) > 1:
            nodes = [
                _RNode(nodes[i : i + fanout])
                for i in range(0, len(nodes), fanout)
            ]
        return nodes[0]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_rect(
        self, x_lo: int, x_hi: int, y_lo: int, y_hi: int
    ) -> list[tuple[tuple[int, int], Any]]:
        """All (point, value) pairs inside the rectangle, filter-guarded."""
        rect = (x_lo, x_hi, y_lo, y_hi)
        if x_lo > x_hi or y_lo > y_hi:
            raise ValueError(f"invalid rectangle {rect}")
        zranges = rect_to_zranges(
            x_lo, x_hi, y_lo, y_hi, self.coord_bits, self.max_zranges
        )
        out: list[tuple[tuple[int, int], Any]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not _intersects(node.mbr, rect):
                continue
            if isinstance(node, _RNode):
                stack.extend(node.children)
                continue
            leaf: _RLeaf = node
            if leaf.filter is not None and not any(
                leaf.filter.query_range(z_lo, z_hi) for z_lo, z_hi in zranges
            ):
                continue  # filter proves the leaf has nothing in the rect
            hits = [
                ((x, y), v)
                for (x, y), v in zip(leaf.points, leaf.values)
                if x_lo <= x <= x_hi and y_lo <= y <= y_hi
            ]
            self.env.read(useful=bool(hits))
            out.extend(hits)
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def leaves(self):
        """All leaves (arbitrary order)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _RNode):
                stack.extend(node.children)
            else:
                yield node

    def filter_bits(self) -> int:
        """Total memory spent on leaf filters."""
        return sum(
            leaf.filter.size_in_bits()
            for leaf in self.leaves()
            if leaf.filter is not None
        )

    def __len__(self) -> int:
        return self.n_points
