"""Sorted String Table with an attached range filter.

An SSTable is an immutable sorted run of (key, value) pairs plus the
in-memory metadata an LSM-tree keeps per table: min/max fence keys and a
range filter built over the keys at creation time (the paper: "a REncoder
is constructed for each SSTable"; "whenever the LSM-tree performs a merge
operation, the REncoder needs to be rebuilt").

Reads go filter-first: ``query_point``/``query_range`` consult the filter
and touch the simulated second level (``env.read``) only on a positive —
the exact mechanism whose cost/benefit Figures 3–4 measure.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.filters.base import RangeFilter
from repro.storage.env import StorageEnv
from repro.storage.memtable import TOMBSTONE

__all__ = ["SSTable", "FilterFactory"]

#: A filter factory takes the table's keys and returns a built filter (or
#: None for filterless tables).
FilterFactory = Callable[[np.ndarray], "RangeFilter | None"]


class SSTable:
    """Immutable sorted run with fence keys and an optional range filter."""

    _counter = 0

    def __init__(
        self,
        items: Iterable[tuple[int, Any]],
        filter_factory: FilterFactory | None = None,
        env: StorageEnv | None = None,
    ) -> None:
        pairs = list(items)
        keys = [k for k, _ in pairs]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("SSTable items must be sorted by unique key")
        self.keys = np.array(keys, dtype=np.uint64)
        self.values: list[Any] = [v for _, v in pairs]
        self.env = env if env is not None else StorageEnv()
        self.min_key = int(self.keys[0]) if len(keys) else 0
        self.max_key = int(self.keys[-1]) if len(keys) else -1
        self.filter: RangeFilter | None = (
            filter_factory(self.keys) if filter_factory and len(keys) else None
        )
        SSTable._counter += 1
        self.table_id = SSTable._counter
        self.env.write(entries=len(self.keys))

    def __len__(self) -> int:
        return len(self.keys)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def overlaps(self, lo: int, hi: int) -> bool:
        """Do the fence keys intersect ``[lo, hi]``?"""
        return len(self.keys) > 0 and not (hi < self.min_key or lo > self.max_key)

    def query_point(self, key: int) -> tuple[bool, Any]:
        """Filter-guarded point read: ``(found, value)``."""
        if not self.overlaps(key, key):
            return False, None
        if self.filter is not None and not self.filter.query_point(key):
            return False, None
        i = int(np.searchsorted(self.keys, np.uint64(key)))
        found = i < len(self.keys) and int(self.keys[i]) == key
        self.env.read(useful=found, block=(self.table_id, i // 64))
        return (True, self.values[i]) if found else (False, None)

    def query_range(self, lo: int, hi: int) -> list[tuple[int, Any]]:
        """Filter-guarded range read, ascending (may include tombstones)."""
        if not self.overlaps(lo, hi):
            return []
        if self.filter is not None and not self.filter.query_range(lo, hi):
            return []
        left = int(np.searchsorted(self.keys, np.uint64(lo), side="left"))
        right = int(np.searchsorted(self.keys, np.uint64(hi), side="right"))
        self.env.read(useful=right > left, block=(self.table_id, left // 64))
        return [
            (int(self.keys[i]), self.values[i]) for i in range(left, right)
        ]

    def scan(self) -> Iterable[tuple[int, Any]]:
        """Full scan (compaction path; not filter-guarded)."""
        for i in range(len(self.keys)):
            yield int(self.keys[i]), self.values[i]

    def live_fraction(self) -> float:
        """Share of entries that are not tombstones."""
        if not self.values:
            return 1.0
        live = sum(1 for v in self.values if v is not TOMBSTONE)
        return live / len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SSTable(id={self.table_id}, n={len(self)}, "
            f"range=[{self.min_key}, {self.max_key}], "
            f"filter={type(self.filter).__name__ if self.filter else None})"
        )
