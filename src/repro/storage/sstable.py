"""Sorted String Table with an attached range filter.

An SSTable is an immutable sorted run of (key, value) pairs plus the
in-memory metadata an LSM-tree keeps per table: min/max fence keys and a
range filter built over the keys at creation time (the paper: "a REncoder
is constructed for each SSTable"; "whenever the LSM-tree performs a merge
operation, the REncoder needs to be rebuilt").

Reads go filter-first: ``query_point``/``query_range`` consult the filter
and touch the simulated second level (``env.read``) only on a positive —
the exact mechanism whose cost/benefit Figures 3–4 measure.  Second-level
reads go through the env's retry policy, so injected transient faults are
retried with capped exponential backoff instead of surfacing to queries.

Persistence and recovery
------------------------
With ``persist=True`` the table serializes its filter into the env's
blob store right after building it and keeps a
:class:`~repro.storage.manifest.ManifestRecord` of the intended bytes.
:meth:`reload_filter` is the restart path: it re-reads the blob (faults
and all), cross-checks it against the manifest, decodes it with the
strict checksummed ``serialize.loads``, and runs the filter's
``verify_invariants`` against the table's own keys.  Any corruption
degrades the table to *all-positive* (no false negative can ever be
served) and triggers a rebuild from the keys — immediately, or deferred
to :meth:`rebuild_filter` so the degraded window is observable.
``filter_state`` tracks the machine: ``live → persisted``,
``persisted → loaded | degraded``, ``degraded → rebuilt``.

Concurrency
-----------
The key/value payload is immutable, so reads need no lock; the only
mutable state is the *filter slot* (``filter`` / ``filter_state`` /
``filter_generation``), which recovery and background rebuilds swap
while queries are in flight.  Every query path therefore reads
``self.filter`` exactly once into a local (a torn "check then probe"
pair is the one way a swap could crash a reader), and every transition
happens atomically under ``_state_lock`` with ``filter_generation``
bumped — so an in-flight query sees either the old filter or the new
one, both of which answer one-sidedly, and never a half-swapped state.
A table whose slot is ``None`` (mid-``degraded``, or between drop and
rebuild) is all-positive: correct, just unfiltered.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.core.errors import FilterCorruptionError, TransientIOError
from repro.filters.base import RangeFilter
from repro.storage.env import StorageEnv
from repro.storage.manifest import ManifestRecord
from repro.storage.memtable import TOMBSTONE
from repro.telemetry.tracing import child_span

__all__ = ["SSTable", "FilterFactory"]

#: A filter factory takes the table's keys and returns a built filter (or
#: None for filterless tables).
FilterFactory = Callable[[np.ndarray], "RangeFilter | None"]


class SSTable:
    """Immutable sorted run with fence keys and an optional range filter."""

    _counter = 0

    def __init__(
        self,
        items: Iterable[tuple[int, Any]],
        filter_factory: FilterFactory | None = None,
        env: StorageEnv | None = None,
        *,
        persist: bool = False,
    ) -> None:
        pairs = list(items)
        keys = [k for k, _ in pairs]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("SSTable items must be sorted by unique key")
        self.keys = np.array(keys, dtype=np.uint64)
        self.values: list[Any] = [v for _, v in pairs]
        self.env = env if env is not None else StorageEnv()
        self.filter_factory = filter_factory
        self.min_key = int(self.keys[0]) if len(keys) else 0
        self.max_key = int(self.keys[-1]) if len(keys) else -1
        self.filter: RangeFilter | None = (
            filter_factory(self.keys) if filter_factory and len(keys) else None
        )
        self.filter_state = "live" if self.filter is not None else "none"
        #: Bumped on every atomic filter-slot swap (persist / degrade /
        #: reload / rebuild); epoch-pinned readers use it to tell which
        #: filter answered them.
        self.filter_generation = 0
        self._state_lock = threading.RLock()
        self.manifest_record: ManifestRecord | None = None
        SSTable._counter += 1
        self.table_id = SSTable._counter
        self.env.write(entries=len(self.keys))
        if persist and self.filter is not None:
            self.persist_filter()

    def __len__(self) -> int:
        return len(self.keys)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def overlaps(self, lo: int, hi: int) -> bool:
        """Do the fence keys intersect ``[lo, hi]``?"""
        return len(self.keys) > 0 and not (hi < self.min_key or lo > self.max_key)

    def query_point(self, key: int) -> tuple[bool, Any]:
        """Filter-guarded point read: ``(found, value)``."""
        if not self.overlaps(key, key):
            return False, None
        filt = self.filter  # one read: a concurrent swap can't tear it
        with child_span("sstable.probe") as sp:
            if sp is not None:
                sp.set(
                    table=self.table_id,
                    kind="point",
                    filter=type(filt).__name__ if filt else None,
                )
            if filt is not None and not filt.query_point(key):
                if sp is not None:
                    sp.set(verdict="negative")
                return False, None
            i = int(np.searchsorted(self.keys, np.uint64(key)))
            found = i < len(self.keys) and int(self.keys[i]) == key
            if sp is not None:
                sp.set(verdict="positive", useful=found)
            self.env.read_with_retry(
                useful=found, block=(self.table_id, i // 64)
            )
            return (True, self.values[i]) if found else (False, None)

    def query_range(self, lo: int, hi: int) -> list[tuple[int, Any]]:
        """Filter-guarded range read, ascending (may include tombstones)."""
        if not self.overlaps(lo, hi):
            return []
        filt = self.filter  # one read: a concurrent swap can't tear it
        with child_span("sstable.probe") as sp:
            if sp is not None:
                sp.set(
                    table=self.table_id,
                    kind="range",
                    filter=type(filt).__name__ if filt else None,
                )
            if filt is not None and not filt.query_range(lo, hi):
                if sp is not None:
                    sp.set(verdict="negative")
                return []
            left = int(np.searchsorted(self.keys, np.uint64(lo), side="left"))
            right = int(np.searchsorted(self.keys, np.uint64(hi), side="right"))
            if sp is not None:
                sp.set(verdict="positive", useful=right > left)
            self.env.read_with_retry(
                useful=right > left, block=(self.table_id, left // 64)
            )
            return [
                (int(self.keys[i]), self.values[i]) for i in range(left, right)
            ]

    def query_point_many(
        self, keys, *, engine: "str | None" = None
    ) -> list[tuple[bool, Any]]:
        """Batch :meth:`query_point` over an array of keys.

        The filter is consulted once for the whole batch via its
        vectorised ``query_point_many`` path; every key that passes the
        fence keys and the filter pays exactly the ``env.read`` the
        scalar path would (same ``useful`` flag, same block identity),
        so I/O accounting is identical query-for-query.  ``engine``
        selects the kernel backend on filters that support fused batch
        kernels; others ignore it.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        out: list[tuple[bool, Any]] = [(False, None)] * keys.size
        if len(self.keys) == 0 or keys.size == 0:
            return out
        cand = np.flatnonzero(
            (keys >= np.uint64(self.min_key))
            & (keys <= np.uint64(self.max_key))
        )
        filt = self.filter  # one read: a concurrent swap can't tear it
        if cand.size and filt is not None:
            if getattr(filt, "supports_kernels", False):
                answers = filt.query_point_many(keys[cand], engine=engine)
            else:
                answers = filt.query_point_many(keys[cand])
            cand = cand[np.asarray(answers, dtype=bool)]
        if cand.size == 0:
            return out
        idx = np.searchsorted(self.keys, keys[cand])
        safe = np.minimum(idx, len(self.keys) - 1)
        found = (idx < len(self.keys)) & (self.keys[safe] == keys[cand])
        for j in range(cand.size):
            i = int(idx[j])
            hit = bool(found[j])
            self.env.read_with_retry(useful=hit, block=(self.table_id, i // 64))
            if hit:
                out[int(cand[j])] = (True, self.values[i])
        return out

    def query_range_many(
        self,
        ranges: Sequence[tuple[int, int]],
        *,
        engine: "str | None" = None,
    ) -> list[list[tuple[int, Any]]]:
        """Batch :meth:`query_range`: one filter batch, per-range reads.

        Returns one ascending item list per input range.  ``env.read``
        accounting matches the scalar loop exactly: ranges rejected by
        the fence keys or the filter cost nothing; the rest pay one read
        with the same ``useful`` flag and block identity.  ``engine``
        selects the kernel backend on filters that support fused batch
        kernels; others ignore it.
        """
        pairs = [(int(lo), int(hi)) for lo, hi in ranges]
        out: list[list[tuple[int, Any]]] = [[] for _ in pairs]
        if len(self.keys) == 0 or not pairs:
            return out
        with child_span("sstable.probe") as sp:
            cand = [
                q
                for q, (lo, hi) in enumerate(pairs)
                if not (hi < self.min_key or lo > self.max_key)
            ]
            filt = self.filter  # one read: a concurrent swap can't tear it
            if sp is not None:
                sp.set(
                    table=self.table_id,
                    kind="range_batch",
                    filter=type(filt).__name__ if filt else None,
                    batch=len(pairs),
                    fence_passed=len(cand),
                )
            if cand and filt is not None:
                ok = filt.query_many([pairs[q] for q in cand], engine=engine)
                cand = [q for q, good in zip(cand, ok) if good]
            if sp is not None:
                sp.set(filter_passed=len(cand))
            if not cand:
                return out
            los = np.array([pairs[q][0] for q in cand], dtype=np.uint64)
            his = np.array([pairs[q][1] for q in cand], dtype=np.uint64)
            lefts = np.searchsorted(self.keys, los, side="left")
            rights = np.searchsorted(self.keys, his, side="right")
            for q, left, right in zip(cand, lefts, rights):
                left, right = int(left), int(right)
                self.env.read_with_retry(
                    useful=right > left, block=(self.table_id, left // 64)
                )
                out[q] = [
                    (int(self.keys[i]), self.values[i])
                    for i in range(left, right)
                ]
            return out

    # ------------------------------------------------------------------
    # filter persistence & recovery
    # ------------------------------------------------------------------
    def persist_filter(self) -> ManifestRecord:
        """Serialize the filter into the env's blob store; keep a manifest.

        The manifest records the length and CRC32 of the bytes *as
        intended* — the injector may tear or flip the stored copy, and
        exactly that gap is what :meth:`reload_filter` detects.
        """
        from repro.core.serialize import checksum, dumps

        with self._state_lock:
            filt = self.filter
            if filt is None:
                raise ValueError(
                    f"SSTable {self.table_id} has no filter to persist"
                )
            blob = dumps(filt)
            name = f"filter-{self.table_id}"
            self.env.put_blob(name, blob)
            self.manifest_record = ManifestRecord(
                table_id=self.table_id,
                blob_name=name,
                n_entries=len(self.keys),
                min_key=self.min_key,
                max_key=self.max_key,
                filter_class=type(filt).__name__,
                blob_len=len(blob),
                crc32=checksum(blob),
            )
            self.filter_state = "persisted"
            self.filter_generation += 1
            return self.manifest_record

    def reload_filter(self, *, rebuild: str = "immediate") -> str:
        """Restart path: re-read the persisted filter, recover from damage.

        Returns the resulting ``filter_state``:

        * ``"loaded"`` — the blob survived manifest cross-checks (length
          + CRC32), strict decoding, and an invariant self-check probing
          the table's own keys; the in-memory filter is replaced by it.
        * ``"rebuilt"`` — damage was detected (``rebuild="immediate"``);
          the filter was rebuilt in place from the table's keys and
          re-persisted, and ``stats.corruptions_detected`` /
          ``stats.filter_rebuilds`` advanced.
        * ``"degraded"`` — damage was detected (``rebuild="deferred"``);
          the filter is dropped, so every query treats the table as
          all-positive (correct, just slower) until
          :meth:`rebuild_filter` runs.

        Transient read faults are retried with backoff first; a read
        that stays transient beyond the retry budget is treated like
        corruption (the blob is unusable either way) but counted only as
        transient faults, not as a detected corruption.
        """
        from repro.core.serialize import checksum, loads

        if rebuild not in ("immediate", "deferred"):
            raise ValueError(
                f'rebuild must be "immediate" or "deferred", got {rebuild!r}'
            )
        record = self.manifest_record
        if record is None:
            raise ValueError(
                f"SSTable {self.table_id} has no persisted filter "
                "(persist_filter was never called)"
            )
        try:
            blob = self.env.get_blob_with_retry(record.blob_name)
            if len(blob) != record.blob_len:
                raise FilterCorruptionError(
                    f"blob {record.blob_name!r} is {len(blob)} bytes, "
                    f"manifest says {record.blob_len} (torn write)"
                )
            if checksum(blob) != record.crc32:
                raise FilterCorruptionError(
                    f"blob {record.blob_name!r} fails the manifest CRC32"
                )
            filt = loads(blob)
            if type(filt).__name__ != record.filter_class:
                raise FilterCorruptionError(
                    f"blob {record.blob_name!r} decodes to "
                    f"{type(filt).__name__}, manifest says "
                    f"{record.filter_class}"
                )
            filt.verify_invariants(self.keys)
        except TransientIOError:
            # Retries exhausted: the data may be fine but is unreachable;
            # recover the same way corruption does, without claiming a
            # corruption was *detected*.
            return self._recover(rebuild)
        except FilterCorruptionError:
            self.env.stats.bump(corruptions_detected=1)
            return self._recover(rebuild)
        with self._state_lock:
            self.filter = filt
            self.filter_state = "loaded"
            self.filter_generation += 1
        return self.filter_state

    def _recover(self, rebuild: str) -> str:
        """Degrade to all-positive; rebuild now or leave it deferred."""
        with self._state_lock:
            self.filter = None
            self.filter_state = "degraded"
            self.filter_generation += 1
        if rebuild == "immediate":
            self.rebuild_filter()
        return self.filter_state

    def rebuild_filter(self) -> None:
        """Rebuild the filter from this table's keys and re-persist it.

        The exit from the ``degraded`` state: queries were all-positive
        (correct but unfiltered) since the corruption was detected; after
        this they are filtered again.  Counted in
        ``stats.filter_rebuilds``.

        Safe to run concurrently with live queries: the new filter is
        built off to the side from the immutable keys and swapped into
        the slot atomically, so an in-flight reader sees either no
        filter (all-positive) or the finished rebuild — never a
        half-built structure.
        """
        if self.filter_factory is None or len(self.keys) == 0:
            raise ValueError(
                f"SSTable {self.table_id} cannot rebuild: no filter factory "
                "or no keys"
            )
        rebuilt = self.filter_factory(self.keys)
        with self._state_lock:
            self.filter = rebuilt
            self.env.stats.bump(filter_rebuilds=1)
            self.filter_state = "rebuilt"
            self.filter_generation += 1
            if self.manifest_record is not None:
                self.persist_filter()
                self.filter_state = "rebuilt"

    def scan(self) -> Iterable[tuple[int, Any]]:
        """Full scan (compaction path; not filter-guarded)."""
        for i in range(len(self.keys)):
            yield int(self.keys[i]), self.values[i]

    def live_fraction(self) -> float:
        """Share of entries that are not tombstones."""
        if not self.values:
            return 1.0
        live = sum(1 for v in self.values if v is not TOMBSTONE)
        return live / len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SSTable(id={self.table_id}, n={len(self)}, "
            f"range=[{self.min_key}, {self.max_key}], "
            f"filter={type(self.filter).__name__ if self.filter else None})"
        )
