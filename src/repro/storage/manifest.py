"""Per-SSTable manifest records for persisted filters.

A real LSM-tree keeps a manifest: a small, separately-stored record of
what each table's files *should* look like, so damage to the files
themselves is detectable.  Here a :class:`ManifestRecord` pins down the
persisted filter blob of one SSTable — its name in the blob store, the
byte length and CRC32 of the bytes *as intended at write time*, the
filter class, and the table's fence keys/entry count.  A torn write or
bit flip then fails the length or CRC cross-check at load time even
before ``serialize.loads`` runs its own header checks.

:class:`Manifest` is the collection the tree persists as JSON; its
decoder is as strict as ``serialize.loads`` — hostile or damaged JSON
raises :class:`~repro.core.errors.FilterCorruptionError`, never a
``KeyError``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.core.errors import FilterCorruptionError

__all__ = ["Manifest", "ManifestRecord"]

_U64 = 1 << 64


@dataclass(frozen=True)
class ManifestRecord:
    """What one SSTable's persisted filter should look like."""

    table_id: int
    blob_name: str
    n_entries: int
    min_key: int
    max_key: int
    filter_class: str
    blob_len: int
    crc32: int

    def as_dict(self) -> dict:
        """Plain-dict form (JSON encoding)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: object) -> "ManifestRecord":
        """Strictly validated decode; raises on any malformed field."""
        if not isinstance(raw, dict):
            raise FilterCorruptionError(
                f"manifest record must be an object, got {type(raw).__name__}"
            )
        def require_int(key: str, lo: int, hi: int) -> int:
            value = raw.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                raise FilterCorruptionError(
                    f"manifest field {key!r} must be an integer, got {value!r}"
                )
            if not lo <= value <= hi:
                raise FilterCorruptionError(
                    f"manifest field {key!r}={value} outside [{lo}, {hi}]"
                )
            return value

        for key in ("blob_name", "filter_class"):
            if not isinstance(raw.get(key), str) or not raw[key]:
                raise FilterCorruptionError(
                    f"manifest field {key!r} must be a non-empty string, "
                    f"got {raw.get(key)!r}"
                )
        return cls(
            table_id=require_int("table_id", 1, _U64),
            blob_name=raw["blob_name"],
            n_entries=require_int("n_entries", 0, _U64),
            min_key=require_int("min_key", 0, _U64 - 1),
            max_key=require_int("max_key", -1, _U64 - 1),
            filter_class=raw["filter_class"],
            blob_len=require_int("blob_len", 0, _U64),
            crc32=require_int("crc32", 0, 0xFFFF_FFFF),
        )


class Manifest:
    """An ordered collection of :class:`ManifestRecord`, JSON round-trip."""

    def __init__(self, records: "list[ManifestRecord] | None" = None) -> None:
        self.records: list[ManifestRecord] = list(records or [])

    def add(self, record: ManifestRecord) -> None:
        """Append one table's record."""
        self.records.append(record)

    def record_for(self, table_id: int) -> "ManifestRecord | None":
        """The record for ``table_id``, or None if that table has none."""
        for record in self.records:
            if record.table_id == table_id:
                return record
        return None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def to_json(self) -> str:
        """Versioned JSON encoding (the tree's persisted manifest file)."""
        return json.dumps(
            {"version": 1, "tables": [r.as_dict() for r in self.records]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: "str | bytes") -> "Manifest":
        """Strictly validated decode of :meth:`to_json` output."""
        try:
            doc = json.loads(text)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FilterCorruptionError(
                f"undecodable manifest: {exc}"
            ) from exc
        if not isinstance(doc, dict) or doc.get("version") != 1:
            raise FilterCorruptionError(
                f"manifest version must be 1, got "
                f"{doc.get('version') if isinstance(doc, dict) else doc!r}"
            )
        tables = doc.get("tables")
        if not isinstance(tables, list):
            raise FilterCorruptionError(
                f"manifest 'tables' must be a list, got {tables!r}"
            )
        return cls([ManifestRecord.from_dict(raw) for raw in tables])
