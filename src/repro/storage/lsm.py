"""Log-structured merge tree — the paper's primary use case (Use Case 1).

An LSM-tree with:

* a sorted memtable flushed to level 0 when full;
* two compaction policies:

  - ``"leveling"`` (default): a level that exceeds its capacity is merged
    *together with the next level* into a single run — few runs, cheap
    reads, write-amplified;
  - ``"tiering"``: a full level's runs are merged into **one new run
    appended to the next level**, which may therefore hold several
    overlapping runs — cheap writes, but every read must consult every
    run, which is exactly the regime where per-run range filters earn
    their keep (the ablation bench quantifies this);

* shadowed versions dropped on merge, tombstones dropped at the bottom;
* a range filter per SSTable, rebuilt on every flush/compaction exactly
  as the paper prescribes, via a pluggable ``filter_factory``.

Reads are filter-first: a point or range query consults each candidate
table's filter and pays a simulated second-level read (``StorageEnv``)
only on positives.  The tree exposes the counters the paper's Figures 3–4
plot: filter probes, total I/Os, and wasted (false-positive) I/Os.

Concurrency & epochs
--------------------
The tree is safe to *read from many threads while one mutates it* — the
contract the serving layer (:mod:`repro.service`) relies on:

* Every structural change (flush, compaction, recovery) happens under
  the tree's lock and bumps ``epoch``, a generation counter.
* Readers never iterate live structures: they take a :class:`ReadView` —
  an epoch-stamped snapshot of the memtable stack and the table list —
  under the lock (O(tables), no copying of data) and run against that.
  SSTables are immutable and a frozen memtable stops changing at flush,
  so a view stays internally consistent forever; at worst it is
  *slightly stale*, never torn.
* Flushes are two-phase: the active memtable is frozen and pushed onto
  the flushing stack (epoch bump), the SSTable (and its filter) is built
  *outside* the lock, then swapped into level 0 as the frozen memtable
  retires (second bump).  At every instant each key is visible through
  at least one structure in every view — the no-false-negative guarantee
  holds *through* the swap, which is what makes ``recover(deferred)``
  rebuilds safe to run concurrently with live traffic.
* :meth:`pin_epoch` registers a reader against the epoch its view came
  from; the pin table is observability for tests and the service's
  health endpoint (it proves no reader is stranded on an ancient epoch),
  not a reclamation barrier — Python's GC is the reclaimer.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.storage.env import StorageEnv
from repro.storage.memtable import TOMBSTONE, MemTable
from repro.storage.sstable import FilterFactory, SSTable
from repro.telemetry.tracing import child_span

__all__ = ["LSMTree", "ReadView"]


@dataclass(frozen=True)
class ReadView:
    """Epoch-stamped snapshot of the readable structures.

    ``memtables`` is newest-first (active buffer, then frozen buffers
    awaiting flush); ``tables`` is newest-first across all levels.  Both
    are plain tuples of references — immutable-by-convention structures,
    so holding a view costs nothing and never blocks writers.
    """

    epoch: int
    memtables: tuple[MemTable, ...]
    tables: tuple[SSTable, ...]


class LSMTree:
    """Leveling LSM-tree with per-SSTable range filters."""

    def __init__(
        self,
        filter_factory: FilterFactory | None = None,
        *,
        memtable_capacity: int = 4096,
        base_capacity: int = 4,
        ratio: int = 4,
        policy: str = "leveling",
        env: StorageEnv | None = None,
        persist_filters: bool = False,
    ) -> None:
        if base_capacity < 1:
            raise ValueError(f"base_capacity must be >= 1, got {base_capacity}")
        if ratio < 2:
            raise ValueError(f"ratio must be >= 2, got {ratio}")
        if policy not in ("leveling", "tiering"):
            raise ValueError(
                f'policy must be "leveling" or "tiering", got {policy!r}'
            )
        self.policy = policy
        self.filter_factory = filter_factory
        self.persist_filters = persist_filters
        self.env = env if env is not None else StorageEnv()
        self.memtable = MemTable(memtable_capacity)
        #: levels[0] is newest-first and may overlap; deeper levels are
        #: sorted, non-overlapping runs.
        self.levels: list[list[SSTable]] = [[]]
        self.base_capacity = base_capacity
        self.ratio = ratio
        #: Structure-generation counter; bumped under the lock on every
        #: flush/compaction/recovery swap.  Readers stamp their views
        #: with it (see the module docstring).
        self.epoch = 0
        self._lock = threading.RLock()
        #: Frozen memtables between freeze and table swap, newest first.
        self._flushing: list[MemTable] = []
        #: epoch -> number of pinned readers currently holding it.
        self._pins: dict[int, int] = {}

    # ------------------------------------------------------------------
    # snapshots & epochs
    # ------------------------------------------------------------------
    def read_view(self) -> ReadView:
        """Snapshot the readable structures at the current epoch."""
        with self._lock:
            return ReadView(
                epoch=self.epoch,
                memtables=(self.memtable, *self._flushing),
                tables=tuple(self._iter_tables()),
            )

    @contextmanager
    def pin_epoch(self):
        """Pin the current epoch for the duration of a read.

        Yields the :class:`ReadView` the reader should query.  The pin
        count is bookkeeping (``active_pins`` / service health), proving
        which epochs still have in-flight readers; views stay valid
        after unpinning — pins expose reader lifetimes, they do not gate
        reclamation.
        """
        with self._lock:
            view = self.read_view()
            self._pins[view.epoch] = self._pins.get(view.epoch, 0) + 1
        try:
            yield view
        finally:
            with self._lock:
                left = self._pins.get(view.epoch, 0) - 1
                if left > 0:
                    self._pins[view.epoch] = left
                else:
                    self._pins.pop(view.epoch, None)

    def active_pins(self) -> dict[int, int]:
        """Epoch -> in-flight pinned readers (snapshot)."""
        with self._lock:
            return dict(self._pins)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key`` (may trigger a flush)."""
        if value is TOMBSTONE:
            raise ValueError("use delete() to remove keys")
        with self._lock:
            self.memtable.put(key, value)
            needs_flush = self.memtable.full
        if needs_flush:
            self.flush()

    def delete(self, key: int) -> None:
        """Delete ``key`` via a tombstone (may trigger a flush)."""
        with self._lock:
            self.memtable.delete(key)
            needs_flush = self.memtable.full
        if needs_flush:
            self.flush()

    def flush(self) -> None:
        """Write the memtable as a new level-0 SSTable.

        Two-phase so concurrent readers never lose sight of a key: the
        active memtable is frozen (still readable via the flushing
        stack) and replaced, the table + filter are built off-lock from
        the frozen snapshot, then the table enters level 0 in the same
        critical section that retires the frozen memtable.
        """
        with self._lock:
            if not len(self.memtable):
                return
            frozen = self.memtable
            self.memtable = MemTable(frozen.capacity)
            self._flushing.insert(0, frozen)
            self.epoch += 1
        try:
            table = self._new_table(frozen.items())
        except BaseException:
            # Keep the frozen data readable and writable-on-retry rather
            # than losing it: fold it back into the active buffer.
            with self._lock:
                self._flushing.remove(frozen)
                for key, value in frozen.items():
                    self.memtable.put(key, value)
                self.epoch += 1
            raise
        with self._lock:
            self.levels[0].insert(0, table)
            self._flushing.remove(frozen)
            self.epoch += 1
            self._maybe_compact(0)

    def _new_table(self, items) -> SSTable:
        """Build one SSTable, persisting its filter when so configured."""
        return SSTable(
            items, self.filter_factory, self.env,
            persist=self.persist_filters,
        )

    def _capacity(self, level: int) -> int:
        if self.policy == "tiering":
            # Each tier holds up to `ratio` runs (level 0: base_capacity).
            return self.base_capacity if level == 0 else self.ratio
        return self.base_capacity * (self.ratio**level)

    def _maybe_compact(self, level: int) -> None:
        with self._lock:
            while level < len(self.levels) and (
                len(self.levels[level]) > self._capacity(level)
            ):
                self._compact(level)
                level += 1

    def _compact(self, level: int) -> None:
        """Merge a full level into the next, per the compaction policy.

        Runs under the tree lock: sources stay visible in old views
        (tables are immutable) while the replacement lists are swapped
        in, and the epoch advances once per merge.
        """
        with self._lock:
            if level + 1 >= len(self.levels):
                self.levels.append([])
            if self.policy == "tiering":
                # Merge only this level's runs; the result is a new
                # overlapping run of the next tier (newest first, like
                # level 0).
                sources = self.levels[level]
                merged = self._merge(
                    sources,
                    drop_tombstones=level + 2 == len(self.levels)
                    and not self.levels[level + 1],
                )
                self.levels[level] = []
                if merged:
                    self.levels[level + 1].insert(
                        0, self._new_table(merged)
                    )
                self.epoch += 1
                return
            sources = self.levels[level] + self.levels[level + 1]
            merged = self._merge(
                sources, drop_tombstones=level + 2 == len(self.levels)
            )
            self.levels[level] = []
            # Rebuild as a single run (one table; fine at simulation
            # scale).
            self.levels[level + 1] = (
                [self._new_table(merged)] if merged else []
            )
            self.epoch += 1

    def _merge(
        self, tables: list[SSTable], drop_tombstones: bool
    ) -> list[tuple[int, Any]]:
        """Newest-wins merge of whole tables, dropping shadowed versions."""
        latest: dict[int, Any] = {}
        # Oldest first so newer tables overwrite.
        for table in reversed(tables):
            for key, value in table.scan():
                latest[key] = value
        items = sorted(latest.items())
        if drop_tombstones:
            items = [(k, v) for k, v in items if v is not TOMBSTONE]
        return items

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _iter_tables(self) -> Iterator[SSTable]:
        """Newest-first over the live level lists (callers hold the lock
        or accept point-in-time semantics)."""
        for table in self.levels[0]:
            yield table
        for level in self.levels[1:]:
            yield from level

    def _tables_newest_first(self) -> Iterator[SSTable]:
        """Snapshot of all live tables, newest first."""
        return iter(self.read_view().tables)

    def get(
        self, key: int, *, view: "ReadView | None" = None
    ) -> tuple[bool, Any]:
        """Point lookup: ``(found, value)``; tombstones read as not found.

        ``view`` lets a caller (the service's epoch-pinned readers) run
        against a previously taken snapshot; omitted, a fresh one is
        taken — same answer, just a possibly newer epoch.
        """
        view = view if view is not None else self.read_view()
        with child_span("lsm.get") as sp:
            if sp is not None:
                sp.set(key=key, epoch=view.epoch, tables=len(view.tables))
            for memtable in view.memtables:
                found, value = memtable.get(key)
                if found:
                    return (
                        (False, None) if value is TOMBSTONE else (True, value)
                    )
            for table in view.tables:
                hit, value = table.query_point(key)
                if hit:
                    return (
                        (False, None) if value is TOMBSTONE else (True, value)
                    )
            return False, None

    def get_many(
        self,
        keys,
        *,
        view: "ReadView | None" = None,
        engine: "str | None" = None,
    ) -> list[tuple[bool, Any]]:
        """Batch :meth:`get`: memtables first, then per-table key batches.

        Unresolved keys flow through the tables newest-first in one
        vectorised filter batch per table, so each key consults exactly
        the tables the scalar loop would (it stops at its first hit) and
        the ``env.read`` accounting matches query-for-query.  Tombstones
        read as not found, as in :meth:`get`.  ``engine`` selects the
        filters' batch kernel backend (:mod:`repro.core.kernels`).
        """
        view = view if view is not None else self.read_view()
        keys = [int(k) for k in keys]
        out: list[tuple[bool, Any] | None] = [None] * len(keys)
        unresolved: list[int] = []
        for i, key in enumerate(keys):
            for memtable in view.memtables:
                found, value = memtable.get(key)
                if found:
                    out[i] = (
                        (False, None) if value is TOMBSTONE else (True, value)
                    )
                    break
            else:
                unresolved.append(i)
        for table in view.tables:
            if not unresolved:
                break
            answers = table.query_point_many(
                [keys[i] for i in unresolved], engine=engine
            )
            still: list[int] = []
            for i, (hit, value) in zip(unresolved, answers):
                if hit:
                    out[i] = (
                        (False, None) if value is TOMBSTONE else (True, value)
                    )
                else:
                    still.append(i)
            unresolved = still
        for i in unresolved:
            out[i] = (False, None)
        return out  # type: ignore[return-value]

    def range_query_many(
        self,
        ranges,
        *,
        view: "ReadView | None" = None,
        engine: "str | None" = None,
    ) -> list[list[tuple[int, Any]]]:
        """Batch :meth:`range_query`: one filter batch per SSTable.

        Every range consults every table (as the scalar path does), but
        each table's filter sees the whole batch at once through its
        vectorised path.  Results and ``env.read`` accounting are
        identical to the scalar loop.  ``engine`` selects the filters'
        batch kernel backend (:mod:`repro.core.kernels`).
        """
        view = view if view is not None else self.read_view()
        pairs = [(int(lo), int(hi)) for lo, hi in ranges]
        for lo, hi in pairs:
            if lo > hi:
                raise ValueError(f"invalid range [{lo}, {hi}]")
        results: list[dict[int, Any]] = [{} for _ in pairs]
        with child_span("lsm.range_query_many") as sp:
            if sp is not None:
                sp.set(
                    batch=len(pairs),
                    epoch=view.epoch,
                    tables=len(view.tables),
                )
            # Oldest first so newer versions overwrite.
            for table in reversed(view.tables):
                table_rows = table.query_range_many(pairs, engine=engine)
                for acc, items in zip(results, table_rows):
                    acc.update(items)
            for memtable in reversed(view.memtables):
                for acc, (lo, hi) in zip(results, pairs):
                    for key, value in memtable.range_items(lo, hi):
                        acc[key] = value
            return [
                [(k, v) for k, v in sorted(acc.items()) if v is not TOMBSTONE]
                for acc in results
            ]

    def range_query(
        self, lo: int, hi: int, *, view: "ReadView | None" = None
    ) -> list[tuple[int, Any]]:
        """All live (key, value) pairs in ``[lo, hi]``, ascending."""
        if lo > hi:
            raise ValueError(f"invalid range [{lo}, {hi}]")
        view = view if view is not None else self.read_view()
        result: dict[int, Any] = {}
        with child_span("lsm.range_query") as sp:
            if sp is not None:
                sp.set(
                    lo=lo, hi=hi, epoch=view.epoch, tables=len(view.tables)
                )
            # Oldest first so newer versions overwrite.
            for table in reversed(view.tables):
                for key, value in table.query_range(lo, hi):
                    result[key] = value
            for memtable in reversed(view.memtables):
                for key, value in memtable.range_items(lo, hi):
                    result[key] = value
            return [
                (k, v) for k, v in sorted(result.items()) if v is not TOMBSTONE
            ]

    # ------------------------------------------------------------------
    # persistence & crash recovery
    # ------------------------------------------------------------------
    def manifest(self) -> "Manifest":
        """Manifest records for every live table with a persisted filter."""
        from repro.storage.manifest import Manifest

        return Manifest(
            [
                t.manifest_record
                for t in self.read_view().tables
                if t.manifest_record is not None
            ]
        )

    def recover(self, *, rebuild: str = "immediate") -> dict[str, int]:
        """Simulated crash restart: reload every persisted filter.

        Drops all in-memory filters (the "crash"), then brings each table
        back through :meth:`SSTable.reload_filter` — clean blobs load,
        torn/flipped blobs are detected and recovered per ``rebuild``
        ("immediate" rebuilds from the table's keys on the spot;
        "deferred" leaves the table all-positive until its
        ``rebuild_filter`` runs).  No query served during or after
        recovery can be a false negative: a table is only ever *more*
        permissive while its filter is missing, and each table's filter
        slot swaps atomically — so this is safe to run concurrently with
        live traffic (the chaos stress test exercises exactly that).

        Returns a summary ``{"tables", "loaded", "rebuilt", "degraded"}``;
        fault/retry totals live in ``env.stats``.
        """
        summary = {"tables": 0, "loaded": 0, "rebuilt": 0, "degraded": 0}
        for table in self.read_view().tables:
            if table.manifest_record is None:
                continue
            summary["tables"] += 1
            state = table.reload_filter(rebuild=rebuild)
            summary[state] += 1
        return summary

    def degraded_tables(self) -> list[SSTable]:
        """Tables currently serving all-positive (filter dropped)."""
        return [
            t
            for t in self.read_view().tables
            if t.filter_state == "degraded"
        ]

    def rebuild_degraded(self) -> int:
        """Rebuild every degraded table's filter; returns how many.

        The background-maintenance half of ``recover(rebuild="deferred")``
        — runs concurrently with live queries (per-table atomic swaps, no
        tree lock held while building).
        """
        rebuilt = 0
        for table in self.degraded_tables():
            table.rebuild_filter()
            rebuilt += 1
        return rebuilt

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Live key count (scans; simulation-scale only)."""
        view = self.read_view()
        seen: dict[int, Any] = {}
        for table in reversed(view.tables):
            for key, value in table.scan():
                seen[key] = value
        for memtable in reversed(view.memtables):
            for key, value in memtable.items():
                seen[key] = value
        return sum(1 for v in seen.values() if v is not TOMBSTONE)

    def table_count(self) -> int:
        """Number of live SSTables across all levels."""
        return len(self.read_view().tables)

    def filter_bits(self) -> int:
        """Total memory spent on filters across all tables."""
        # Walrus: one read of each filter slot, racing swaps can't tear
        # the None-check from the use.
        return sum(
            f.size_in_bits()
            for t in self.read_view().tables
            if (f := t.filter) is not None
        )

    def filter_probes(self) -> int:
        """Total probe count across all table filters."""
        return sum(
            f.probe_count
            for t in self.read_view().tables
            if (f := t.filter) is not None
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        with self._lock:
            shape = [len(level) for level in self.levels]
            return (
                f"LSMTree(levels={shape}, memtable={len(self.memtable)}, "
                f"epoch={self.epoch})"
            )
