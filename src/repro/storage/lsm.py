"""Log-structured merge tree — the paper's primary use case (Use Case 1).

An LSM-tree with:

* a sorted memtable flushed to level 0 when full;
* two compaction policies:

  - ``"leveling"`` (default): a level that exceeds its capacity is merged
    *together with the next level* into a single run — few runs, cheap
    reads, write-amplified;
  - ``"tiering"``: a full level's runs are merged into **one new run
    appended to the next level**, which may therefore hold several
    overlapping runs — cheap writes, but every read must consult every
    run, which is exactly the regime where per-run range filters earn
    their keep (the ablation bench quantifies this);

* shadowed versions dropped on merge, tombstones dropped at the bottom;
* a range filter per SSTable, rebuilt on every flush/compaction exactly
  as the paper prescribes, via a pluggable ``filter_factory``.

Reads are filter-first: a point or range query consults each candidate
table's filter and pays a simulated second-level read (``StorageEnv``)
only on positives.  The tree exposes the counters the paper's Figures 3–4
plot: filter probes, total I/Os, and wasted (false-positive) I/Os.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.storage.env import StorageEnv
from repro.storage.memtable import TOMBSTONE, MemTable
from repro.storage.sstable import FilterFactory, SSTable

__all__ = ["LSMTree"]


class LSMTree:
    """Leveling LSM-tree with per-SSTable range filters."""

    def __init__(
        self,
        filter_factory: FilterFactory | None = None,
        *,
        memtable_capacity: int = 4096,
        base_capacity: int = 4,
        ratio: int = 4,
        policy: str = "leveling",
        env: StorageEnv | None = None,
        persist_filters: bool = False,
    ) -> None:
        if base_capacity < 1:
            raise ValueError(f"base_capacity must be >= 1, got {base_capacity}")
        if ratio < 2:
            raise ValueError(f"ratio must be >= 2, got {ratio}")
        if policy not in ("leveling", "tiering"):
            raise ValueError(
                f'policy must be "leveling" or "tiering", got {policy!r}'
            )
        self.policy = policy
        self.filter_factory = filter_factory
        self.persist_filters = persist_filters
        self.env = env if env is not None else StorageEnv()
        self.memtable = MemTable(memtable_capacity)
        #: levels[0] is newest-first and may overlap; deeper levels are
        #: sorted, non-overlapping runs.
        self.levels: list[list[SSTable]] = [[]]
        self.base_capacity = base_capacity
        self.ratio = ratio

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key`` (may trigger a flush)."""
        if value is TOMBSTONE:
            raise ValueError("use delete() to remove keys")
        self.memtable.put(key, value)
        if self.memtable.full:
            self.flush()

    def delete(self, key: int) -> None:
        """Delete ``key`` via a tombstone (may trigger a flush)."""
        self.memtable.delete(key)
        if self.memtable.full:
            self.flush()

    def flush(self) -> None:
        """Write the memtable as a new level-0 SSTable."""
        if not len(self.memtable):
            return
        table = self._new_table(self.memtable.items())
        self.levels[0].insert(0, table)
        self.memtable.clear()
        self._maybe_compact(0)

    def _new_table(self, items) -> SSTable:
        """Build one SSTable, persisting its filter when so configured."""
        return SSTable(
            items, self.filter_factory, self.env,
            persist=self.persist_filters,
        )

    def _capacity(self, level: int) -> int:
        if self.policy == "tiering":
            # Each tier holds up to `ratio` runs (level 0: base_capacity).
            return self.base_capacity if level == 0 else self.ratio
        return self.base_capacity * (self.ratio**level)

    def _maybe_compact(self, level: int) -> None:
        while level < len(self.levels) and (
            len(self.levels[level]) > self._capacity(level)
        ):
            self._compact(level)
            level += 1

    def _compact(self, level: int) -> None:
        """Merge a full level into the next, per the compaction policy."""
        if level + 1 >= len(self.levels):
            self.levels.append([])
        if self.policy == "tiering":
            # Merge only this level's runs; the result is a new overlapping
            # run of the next tier (newest first, like level 0).
            sources = self.levels[level]
            self.levels[level] = []
            merged = self._merge(
                sources,
                drop_tombstones=level + 2 == len(self.levels)
                and not self.levels[level + 1],
            )
            if merged:
                self.levels[level + 1].insert(
                    0, self._new_table(merged)
                )
            return
        sources = self.levels[level] + self.levels[level + 1]
        self.levels[level] = []
        merged = self._merge(sources, drop_tombstones=level + 2 == len(self.levels))
        # Rebuild as a single run (one table; fine at simulation scale).
        self.levels[level + 1] = (
            [self._new_table(merged)] if merged else []
        )

    def _merge(
        self, tables: list[SSTable], drop_tombstones: bool
    ) -> list[tuple[int, Any]]:
        """Newest-wins merge of whole tables, dropping shadowed versions."""
        latest: dict[int, Any] = {}
        # Oldest first so newer tables overwrite.
        for table in reversed(tables):
            for key, value in table.scan():
                latest[key] = value
        items = sorted(latest.items())
        if drop_tombstones:
            items = [(k, v) for k, v in items if v is not TOMBSTONE]
        return items

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _tables_newest_first(self) -> Iterator[SSTable]:
        for table in self.levels[0]:
            yield table
        for level in self.levels[1:]:
            yield from level

    def get(self, key: int) -> tuple[bool, Any]:
        """Point lookup: ``(found, value)``; tombstones read as not found."""
        found, value = self.memtable.get(key)
        if found:
            return (False, None) if value is TOMBSTONE else (True, value)
        for table in self._tables_newest_first():
            hit, value = table.query_point(key)
            if hit:
                return (False, None) if value is TOMBSTONE else (True, value)
        return False, None

    def get_many(self, keys) -> list[tuple[bool, Any]]:
        """Batch :meth:`get`: memtable first, then per-table key batches.

        Unresolved keys flow through the tables newest-first in one
        vectorised filter batch per table, so each key consults exactly
        the tables the scalar loop would (it stops at its first hit) and
        the ``env.read`` accounting matches query-for-query.  Tombstones
        read as not found, as in :meth:`get`.
        """
        keys = [int(k) for k in keys]
        out: list[tuple[bool, Any] | None] = [None] * len(keys)
        unresolved: list[int] = []
        for i, key in enumerate(keys):
            found, value = self.memtable.get(key)
            if found:
                out[i] = (False, None) if value is TOMBSTONE else (True, value)
            else:
                unresolved.append(i)
        for table in self._tables_newest_first():
            if not unresolved:
                break
            answers = table.query_point_many([keys[i] for i in unresolved])
            still: list[int] = []
            for i, (hit, value) in zip(unresolved, answers):
                if hit:
                    out[i] = (
                        (False, None) if value is TOMBSTONE else (True, value)
                    )
                else:
                    still.append(i)
            unresolved = still
        for i in unresolved:
            out[i] = (False, None)
        return out  # type: ignore[return-value]

    def range_query_many(
        self, ranges
    ) -> list[list[tuple[int, Any]]]:
        """Batch :meth:`range_query`: one filter batch per SSTable.

        Every range consults every table (as the scalar path does), but
        each table's filter sees the whole batch at once through its
        vectorised path.  Results and ``env.read`` accounting are
        identical to the scalar loop.
        """
        pairs = [(int(lo), int(hi)) for lo, hi in ranges]
        for lo, hi in pairs:
            if lo > hi:
                raise ValueError(f"invalid range [{lo}, {hi}]")
        results: list[dict[int, Any]] = [{} for _ in pairs]
        # Oldest first so newer versions overwrite.
        for table in reversed(list(self._tables_newest_first())):
            for acc, items in zip(results, table.query_range_many(pairs)):
                acc.update(items)
        for acc, (lo, hi) in zip(results, pairs):
            for key, value in self.memtable.range_items(lo, hi):
                acc[key] = value
        return [
            [(k, v) for k, v in sorted(acc.items()) if v is not TOMBSTONE]
            for acc in results
        ]

    def range_query(self, lo: int, hi: int) -> list[tuple[int, Any]]:
        """All live (key, value) pairs in ``[lo, hi]``, ascending."""
        if lo > hi:
            raise ValueError(f"invalid range [{lo}, {hi}]")
        result: dict[int, Any] = {}
        # Oldest first so newer versions overwrite.
        for table in reversed(list(self._tables_newest_first())):
            for key, value in table.query_range(lo, hi):
                result[key] = value
        for key, value in self.memtable.range_items(lo, hi):
            result[key] = value
        return [
            (k, v) for k, v in sorted(result.items()) if v is not TOMBSTONE
        ]

    def range_empty(self) -> bool:  # pragma: no cover - convenience
        """True iff the tree holds no live keys."""
        return len(self) == 0

    # ------------------------------------------------------------------
    # persistence & crash recovery
    # ------------------------------------------------------------------
    def manifest(self) -> "Manifest":
        """Manifest records for every live table with a persisted filter."""
        from repro.storage.manifest import Manifest

        return Manifest(
            [
                t.manifest_record
                for t in self._tables_newest_first()
                if t.manifest_record is not None
            ]
        )

    def recover(self, *, rebuild: str = "immediate") -> dict[str, int]:
        """Simulated crash restart: reload every persisted filter.

        Drops all in-memory filters (the "crash"), then brings each table
        back through :meth:`SSTable.reload_filter` — clean blobs load,
        torn/flipped blobs are detected and recovered per ``rebuild``
        ("immediate" rebuilds from the table's keys on the spot;
        "deferred" leaves the table all-positive until its
        ``rebuild_filter`` runs).  No query served during or after
        recovery can be a false negative: a table is only ever *more*
        permissive while its filter is missing.

        Returns a summary ``{"tables", "loaded", "rebuilt", "degraded"}``;
        fault/retry totals live in ``env.stats``.
        """
        summary = {"tables": 0, "loaded": 0, "rebuilt": 0, "degraded": 0}
        for table in self._tables_newest_first():
            if table.manifest_record is None:
                continue
            table.filter = None
            summary["tables"] += 1
            state = table.reload_filter(rebuild=rebuild)
            summary[state] += 1
        return summary

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Live key count (scans; simulation-scale only)."""
        seen: dict[int, Any] = {}
        for table in reversed(list(self._tables_newest_first())):
            for key, value in table.scan():
                seen[key] = value
        for key, value in self.memtable.items():
            seen[key] = value
        return sum(1 for v in seen.values() if v is not TOMBSTONE)

    def table_count(self) -> int:
        """Number of live SSTables across all levels."""
        return sum(len(level) for level in self.levels)

    def filter_bits(self) -> int:
        """Total memory spent on filters across all tables."""
        return sum(
            t.filter.size_in_bits()
            for t in self._tables_newest_first()
            if t.filter is not None
        )

    def filter_probes(self) -> int:
        """Total probe count across all table filters."""
        return sum(
            t.filter.probe_count
            for t in self._tables_newest_first()
            if t.filter is not None
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        shape = [len(level) for level in self.levels]
        return f"LSMTree(levels={shape}, memtable={len(self.memtable)})"
