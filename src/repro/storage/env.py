"""Two-level storage cost model (the paper's "simulation environment").

The paper's overall-throughput experiments run against a simulated
two-level store: filters live in the first level (memory), items in the
second (disk).  A query pays filter-probe time always and a second-level
access only when the filter answers positive.  This module supplies that
accounting:

* :class:`StorageEnv` counts second-level accesses and charges each a
  configurable latency (``io_cost_ns``), so *overall time* is
  ``measured filter time + ios × io_cost_ns`` — the same bookkeeping the
  paper uses, with the latency gap between levels as an explicit knob.
* Counters distinguish useful reads from wasted ones (false-positive
  I/Os), the quantity range filters exist to eliminate.

The default ``io_cost_ns`` of 1 ms keeps the paper's ~1000× gap between a
filter probe and a second-level access when the probe itself is a
few-microsecond pure-Python operation; DESIGN.md documents this
substitution.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["StorageEnv", "IoStats"]

#: Default simulated second-level access latency, in nanoseconds.
DEFAULT_IO_COST_NS = 1_000_000


@dataclass
class IoStats:
    """Second-level access counters."""

    reads: int = 0
    useful_reads: int = 0
    wasted_reads: int = 0
    writes: int = 0
    entries_written: int = 0
    cache_hits: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.useful_reads = 0
        self.wasted_reads = 0
        self.writes = 0
        self.entries_written = 0
        self.cache_hits = 0


@dataclass
class StorageEnv:
    """Shared cost model for the LSM / B+tree / R-tree substrates.

    ``cache_blocks > 0`` enables an LRU block cache in front of the
    second level: a read carrying a ``block`` identity that hits the
    cache costs nothing (counted in ``cache_hits``).  Filters and caches
    are complementary — the cache absorbs *repeated* reads of hot blocks,
    the filter eliminates reads of *empty* regions the cache would never
    retain; the YCSB use-case bench shows the interplay.
    """

    io_cost_ns: int = DEFAULT_IO_COST_NS
    cache_blocks: int = 0
    stats: IoStats = field(default_factory=IoStats)
    _cache: "OrderedDict[object, None]" = field(
        default_factory=OrderedDict, repr=False
    )

    def read(self, useful: bool, block: object | None = None) -> None:
        """Record one second-level read; ``useful`` = it found data.

        ``block`` is an opaque identity (e.g. ``(table_id, block_no)``)
        used by the LRU cache when enabled; reads without one bypass the
        cache.
        """
        if self.cache_blocks > 0 and block is not None:
            if block in self._cache:
                self._cache.move_to_end(block)
                self.stats.cache_hits += 1
                return
            self._cache[block] = None
            if len(self._cache) > self.cache_blocks:
                self._cache.popitem(last=False)
        self.stats.reads += 1
        if useful:
            self.stats.useful_reads += 1
        else:
            self.stats.wasted_reads += 1

    def write(self, entries: int = 0) -> None:
        """Record one second-level write (flush/compaction output).

        ``entries`` feeds the write-amplification accounting: the total
        entries (re)written across all flushes and compactions.
        """
        self.stats.writes += 1
        self.stats.entries_written += entries

    def simulated_io_seconds(self) -> float:
        """Total simulated second-level latency so far."""
        return self.stats.reads * self.io_cost_ns * 1e-9

    def overall_seconds(self, filter_seconds: float) -> float:
        """Overall time = measured first-level time + simulated I/O time."""
        return filter_seconds + self.simulated_io_seconds()

    def reset(self) -> None:
        """Zero the I/O counters and drop the block cache."""
        self.stats.reset()
        self._cache.clear()
