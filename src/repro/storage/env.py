"""Two-level storage cost model (the paper's "simulation environment").

The paper's overall-throughput experiments run against a simulated
two-level store: filters live in the first level (memory), items in the
second (disk).  A query pays filter-probe time always and a second-level
access only when the filter answers positive.  This module supplies that
accounting:

* :class:`StorageEnv` counts second-level accesses and charges each a
  configurable latency (``io_cost_ns``), so *overall time* is
  ``measured filter time + ios × io_cost_ns`` — the same bookkeeping the
  paper uses, with the latency gap between levels as an explicit knob.
* Counters distinguish useful reads from wasted ones (false-positive
  I/Os), the quantity range filters exist to eliminate.

The default ``io_cost_ns`` of 1 ms keeps the paper's ~1000× gap between a
filter probe and a second-level access when the probe itself is a
few-microsecond pure-Python operation; DESIGN.md documents this
substitution.

Fault model
-----------
The env can carry a :class:`~repro.storage.faults.FaultInjector`.  When
it does, second-level reads and blob reads may raise
:class:`~repro.core.errors.TransientIOError` (retried by
:meth:`read_with_retry` / :meth:`get_blob_with_retry` with capped
exponential backoff on the *simulated* clock — ``stats.backoff_ns``
feeds :meth:`simulated_io_seconds`), and blob writes may land torn or
bit-flipped.  The env also hosts the simulated blob store that persisted
filters live in (``put_blob``/``get_blob``), so every byte a filter
writes to "disk" passes through the injector.  Faults and recovery work
are all counted in :class:`IoStats`; DESIGN.md §7 documents the model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.errors import FilterCorruptionError, TransientIOError
from repro.storage.faults import FaultInjector

__all__ = ["StorageEnv", "IoStats"]

#: Default simulated second-level access latency, in nanoseconds.
DEFAULT_IO_COST_NS = 1_000_000

#: Retry policy defaults: up to 4 retries, backoff 2^attempt * 0.1 ms
#: capped at 1.6 ms — all simulated time, charged to ``stats.backoff_ns``.
DEFAULT_MAX_RETRIES = 4
DEFAULT_BACKOFF_BASE_NS = 100_000
DEFAULT_BACKOFF_CAP_NS = 1_600_000


@dataclass
class IoStats:
    """Second-level access, fault and recovery counters."""

    reads: int = 0
    useful_reads: int = 0
    wasted_reads: int = 0
    writes: int = 0
    entries_written: int = 0
    cache_hits: int = 0
    # Blob store (persisted filters).
    blob_reads: int = 0
    blob_writes: int = 0
    # Injected faults, by type.
    transient_faults: int = 0
    torn_writes: int = 0
    bit_flips: int = 0
    # Recovery work.
    retries: int = 0
    backoff_ns: int = 0
    corruptions_detected: int = 0
    filter_rebuilds: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.useful_reads = 0
        self.wasted_reads = 0
        self.writes = 0
        self.entries_written = 0
        self.cache_hits = 0
        self.blob_reads = 0
        self.blob_writes = 0
        self.transient_faults = 0
        self.torn_writes = 0
        self.bit_flips = 0
        self.retries = 0
        self.backoff_ns = 0
        self.corruptions_detected = 0
        self.filter_rebuilds = 0

    def fault_counts(self) -> dict[str, int]:
        """The fault/recovery counters as a dict (bench reporting)."""
        return {
            "transient_faults": self.transient_faults,
            "torn_writes": self.torn_writes,
            "bit_flips": self.bit_flips,
            "retries": self.retries,
            "backoff_ns": self.backoff_ns,
            "corruptions_detected": self.corruptions_detected,
            "filter_rebuilds": self.filter_rebuilds,
        }


@dataclass
class StorageEnv:
    """Shared cost model for the LSM / B+tree / R-tree substrates.

    ``cache_blocks > 0`` enables an LRU block cache in front of the
    second level: a read carrying a ``block`` identity that hits the
    cache costs nothing (counted in ``cache_hits``).  Filters and caches
    are complementary — the cache absorbs *repeated* reads of hot blocks,
    the filter eliminates reads of *empty* regions the cache would never
    retain; the YCSB use-case bench shows the interplay.

    ``injector`` plugs in deterministic fault injection (see the module
    docstring); without one, every operation succeeds and all fault
    counters stay zero, so the fault machinery is free on the happy path.
    """

    io_cost_ns: int = DEFAULT_IO_COST_NS
    cache_blocks: int = 0
    injector: "FaultInjector | None" = None
    max_read_retries: int = DEFAULT_MAX_RETRIES
    backoff_base_ns: int = DEFAULT_BACKOFF_BASE_NS
    backoff_cap_ns: int = DEFAULT_BACKOFF_CAP_NS
    stats: IoStats = field(default_factory=IoStats)
    _cache: "OrderedDict[object, None]" = field(
        default_factory=OrderedDict, repr=False
    )
    _blobs: "dict[str, bytes]" = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # second-level (data) reads and writes
    # ------------------------------------------------------------------
    def read(self, useful: bool, block: object | None = None) -> None:
        """Record one second-level read; ``useful`` = it found data.

        ``block`` is an opaque identity (e.g. ``(table_id, block_no)``)
        used by the LRU cache when enabled; reads without one bypass the
        cache.  A cache hit never touches the second level, so it can
        never raise; a miss consults the injector *before* it is counted
        or cached — a failed read is not a read, and its block is only
        cached once a retry succeeds.

        Raises
        ------
        TransientIOError
            When the injector decides this read fails; use
            :meth:`read_with_retry` for the standard retry policy.
        """
        if self.cache_blocks > 0 and block is not None:
            if block in self._cache:
                self._cache.move_to_end(block)
                self.stats.cache_hits += 1
                return
        if self.injector is not None:
            try:
                self.injector.check_read("second-level read")
            except TransientIOError:
                self.stats.transient_faults += 1
                raise
        if self.cache_blocks > 0 and block is not None:
            self._cache[block] = None
            if len(self._cache) > self.cache_blocks:
                self._cache.popitem(last=False)
        self.stats.reads += 1
        if useful:
            self.stats.useful_reads += 1
        else:
            self.stats.wasted_reads += 1

    def read_with_retry(
        self, useful: bool, block: object | None = None
    ) -> None:
        """:meth:`read` with the capped-exponential-backoff retry policy.

        Transient faults are retried up to ``max_read_retries`` times,
        sleeping ``min(backoff_base_ns << attempt, backoff_cap_ns)`` of
        *simulated* time before each retry (``stats.retries`` /
        ``stats.backoff_ns``).  Re-raises :class:`TransientIOError` only
        when the budget is exhausted.
        """
        attempt = 0
        while True:
            try:
                self.read(useful, block)
                return
            except TransientIOError:
                if attempt >= self.max_read_retries:
                    raise
                self._backoff(attempt)
                attempt += 1

    def write(self, entries: int = 0) -> None:
        """Record one second-level write (flush/compaction output).

        ``entries`` feeds the write-amplification accounting: the total
        entries (re)written across all flushes and compactions.
        """
        self.stats.writes += 1
        self.stats.entries_written += entries

    # ------------------------------------------------------------------
    # blob store (persisted filter images)
    # ------------------------------------------------------------------
    def put_blob(self, name: str, data: bytes) -> int:
        """Persist a named blob; returns the number of bytes *stored*.

        The injector may tear the write (store a strict prefix) or flip
        one bit at rest; either way the damaged bytes are what later
        reads see, exactly like a real torn write or bit rot.  The
        caller's manifest should record the length/CRC of the *intended*
        bytes so damage is detectable.
        """
        stored = bytes(data)
        if self.injector is not None:
            stored, fault = self.injector.mangle_write(stored)
            if fault == "torn":
                self.stats.torn_writes += 1
            elif fault == "flip":
                self.stats.bit_flips += 1
        self._blobs[name] = stored
        self.stats.blob_writes += 1
        return len(stored)

    def get_blob(self, name: str) -> bytes:
        """Read a named blob (may raise a transient fault).

        Raises
        ------
        TransientIOError
            When the injector decides this read fails (retryable).
        FilterCorruptionError
            When no blob of that name exists (a lost write is
            corruption, not a retryable condition).
        """
        if self.injector is not None:
            try:
                self.injector.check_read(f"blob read {name!r}")
            except TransientIOError:
                self.stats.transient_faults += 1
                raise
        if name not in self._blobs:
            raise FilterCorruptionError(f"blob {name!r} does not exist")
        self.stats.blob_reads += 1
        return self._blobs[name]

    def get_blob_with_retry(self, name: str) -> bytes:
        """:meth:`get_blob` under the standard retry/backoff policy."""
        attempt = 0
        while True:
            try:
                return self.get_blob(name)
            except TransientIOError:
                if attempt >= self.max_read_retries:
                    raise
                self._backoff(attempt)
                attempt += 1

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> None:
        """Charge one capped-exponential backoff sleep to simulated time."""
        delay = min(self.backoff_base_ns << attempt, self.backoff_cap_ns)
        self.stats.retries += 1
        self.stats.backoff_ns += delay

    def simulated_io_seconds(self) -> float:
        """Total simulated second-level latency so far (incl. backoff)."""
        return (
            self.stats.reads * self.io_cost_ns + self.stats.backoff_ns
        ) * 1e-9

    def overall_seconds(self, filter_seconds: float) -> float:
        """Overall time = measured first-level time + simulated I/O time."""
        return filter_seconds + self.simulated_io_seconds()

    def reset(self) -> None:
        """Zero the I/O counters and drop the block cache.

        Persisted blobs are *not* dropped — they are the simulated disk,
        and resetting the counters between measurement phases must not
        lose data (a block cached before the reset is simply re-read and
        counted exactly once after it).
        """
        self.stats.reset()
        self._cache.clear()
