"""Two-level storage cost model (the paper's "simulation environment").

The paper's overall-throughput experiments run against a simulated
two-level store: filters live in the first level (memory), items in the
second (disk).  A query pays filter-probe time always and a second-level
access only when the filter answers positive.  This module supplies that
accounting:

* :class:`StorageEnv` counts second-level accesses and charges each a
  configurable latency (``io_cost_ns``), so *overall time* is
  ``measured filter time + ios × io_cost_ns`` — the same bookkeeping the
  paper uses, with the latency gap between levels as an explicit knob.
* Counters distinguish useful reads from wasted ones (false-positive
  I/Os), the quantity range filters exist to eliminate.

The default ``io_cost_ns`` of 1 ms keeps the paper's ~1000× gap between a
filter probe and a second-level access when the probe itself is a
few-microsecond pure-Python operation; DESIGN.md documents this
substitution.

Fault model
-----------
The env can carry a :class:`~repro.storage.faults.FaultInjector`.  When
it does, second-level reads and blob reads may raise
:class:`~repro.core.errors.TransientIOError` (retried by
:meth:`read_with_retry` / :meth:`get_blob_with_retry` with capped
exponential backoff on the *simulated* clock — ``stats.backoff_ns``
feeds :meth:`simulated_io_seconds`), and blob writes may land torn or
bit-flipped.  The env also hosts the simulated blob store that persisted
filters live in (``put_blob``/``get_blob``), so every byte a filter
writes to "disk" passes through the injector.  Faults and recovery work
are all counted in :class:`IoStats`; DESIGN.md §7 documents the model.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.errors import (
    DeadlineExceededError,
    FilterCorruptionError,
    TornAppendError,
    TransientIOError,
)
from repro.storage.faults import FaultInjector
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracing import current_span

__all__ = ["StorageEnv", "IoStats", "SimulatedClock"]

#: Default simulated second-level access latency, in nanoseconds.
DEFAULT_IO_COST_NS = 1_000_000

#: Retry policy defaults: up to 4 retries, backoff 2^attempt * 0.1 ms
#: capped at 1.6 ms — all simulated time, charged to ``stats.backoff_ns``.
DEFAULT_MAX_RETRIES = 4
DEFAULT_BACKOFF_BASE_NS = 100_000
DEFAULT_BACKOFF_CAP_NS = 1_600_000


class SimulatedClock:
    """Thread-safe monotonic simulated clock (nanoseconds).

    The env charges every second-level access, backoff sleep and injected
    stall to this clock; deadlines (:meth:`StorageEnv.deadline_scope`)
    and the serving layer's circuit-breaker open timer read it.  Shared
    by every worker of a service, so ``advance`` is atomic and returns
    the post-advance time — the value the caller's deadline check must
    use, since another thread may advance again immediately after.
    """

    def __init__(self, start_ns: int = 0) -> None:
        self._now_ns = start_ns
        self._lock = threading.Lock()

    def now_ns(self) -> int:
        """Current simulated time."""
        with self._lock:
            return self._now_ns

    def advance(self, ns: int) -> int:
        """Add ``ns`` (>= 0) and return the new time."""
        if ns < 0:
            raise ValueError(f"cannot advance by {ns} ns")
        with self._lock:
            self._now_ns += ns
            return self._now_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulatedClock(now={self.now_ns()}ns)"


#: Counter fields of :class:`IoStats`, in declaration order (drives
#: ``reset``/``bump`` so a new counter cannot be forgotten in either).
_IO_COUNTERS = (
    "reads",
    "useful_reads",
    "wasted_reads",
    "writes",
    "entries_written",
    "cache_hits",
    "blob_reads",
    "blob_writes",
    "transient_faults",
    "torn_writes",
    "bit_flips",
    "slow_reads",
    "slow_read_ns",
    "retries",
    "backoff_ns",
    "corruptions_detected",
    "filter_rebuilds",
    "blob_appends",
    "torn_appends",
    "blob_renames",
    "blob_deletes",
    "blob_rots",
)


class IoStats:
    """Second-level access, fault and recovery counters.

    A thin view over a :class:`~repro.telemetry.registry.MetricsRegistry`:
    every counter is a registry :class:`~repro.telemetry.registry.Counter`
    named ``io_<counter>`` and labelled with this stats object's
    component, so the same numbers the bench harness reads are exported
    through ``metrics-dump`` / Prometheus with no double bookkeeping.
    By default each ``IoStats`` owns a private registry (envs stay
    isolated); the serving layer re-homes it onto the service registry
    with :meth:`bind`.

    The public surface is unchanged from the original dataclass: read
    counters as attributes (``stats.reads``), mutate through
    :meth:`bump` (atomic per call — holding one lock per stats object so
    concurrent service workers never lose increments), zero with
    :meth:`reset`.
    """

    def __init__(
        self,
        registry: "MetricsRegistry | None" = None,
        component: str = "storage",
    ) -> None:
        self._lock = threading.Lock()
        self._registry = registry if registry is not None else MetricsRegistry()
        self._component = component
        self._counters = {
            name: self._registry.counter(
                f"io_{name}",
                help=f"IoStats.{name}",
                labels={"component": component},
            )
            for name in _IO_COUNTERS
        }

    def __getattr__(self, name: str):
        # Only consulted when normal lookup fails — i.e. for counters.
        if name in _IO_COUNTERS:
            return self.__dict__["_counters"][name].value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def registry(self) -> MetricsRegistry:
        """The registry currently backing these counters."""
        return self._registry

    def bind(
        self,
        registry: MetricsRegistry,
        component: "str | None" = None,
    ) -> "IoStats":
        """Re-home the counters onto ``registry``, carrying totals over.

        Counts accumulated so far are migrated into the target
        registry's counters (same names, new component label), so a
        service attaching telemetry to an already-warm env loses
        nothing.  Idempotent for the same registry + component.
        """
        with self._lock:
            component = component if component is not None else self._component
            if registry is self._registry and component == self._component:
                return self
            fresh = {
                name: registry.counter(
                    f"io_{name}",
                    help=f"IoStats.{name}",
                    labels={"component": component},
                )
                for name in _IO_COUNTERS
            }
            for name, counter in self._counters.items():
                carried = counter.value
                if carried:
                    fresh[name].inc(carried)
            self._registry = registry
            self._component = component
            self._counters = fresh
        return self

    def bump(self, **deltas: int) -> None:
        """Atomically add the given deltas to the named counters."""
        with self._lock:
            for name, delta in deltas.items():
                counter = self._counters.get(name)
                if counter is None:
                    raise AttributeError(f"unknown IoStats counter {name!r}")
                counter.inc(delta)

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            for counter in self._counters.values():
                counter.reset()

    def as_dict(self) -> dict[str, int]:
        """All counters as a name → value dict."""
        return {name: c.value for name, c in self._counters.items()}

    def __eq__(self, other: object) -> bool:
        # Value equality, as the original dataclass had: two stats objects
        # are equal iff every counter agrees.
        if not isinstance(other, IoStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        return f"IoStats({nonzero})"

    def fault_counts(self) -> dict[str, int]:
        """The fault/recovery counters as a dict (bench reporting)."""
        return {
            "transient_faults": self.transient_faults,
            "torn_writes": self.torn_writes,
            "bit_flips": self.bit_flips,
            "slow_reads": self.slow_reads,
            "slow_read_ns": self.slow_read_ns,
            "retries": self.retries,
            "backoff_ns": self.backoff_ns,
            "corruptions_detected": self.corruptions_detected,
            "filter_rebuilds": self.filter_rebuilds,
        }


@dataclass
class StorageEnv:
    """Shared cost model for the LSM / B+tree / R-tree substrates.

    ``cache_blocks > 0`` enables an LRU block cache in front of the
    second level: a read carrying a ``block`` identity that hits the
    cache costs nothing (counted in ``cache_hits``).  Filters and caches
    are complementary — the cache absorbs *repeated* reads of hot blocks,
    the filter eliminates reads of *empty* regions the cache would never
    retain; the YCSB use-case bench shows the interplay.

    ``injector`` plugs in deterministic fault injection (see the module
    docstring); without one, every operation succeeds and all fault
    counters stay zero, so the fault machinery is free on the happy path.

    ``clock`` attaches a :class:`SimulatedClock`: every second-level
    access then advances it by ``io_cost_ns`` plus any injected stall,
    and backoff sleeps advance it by their delay — giving concurrent
    service workers a shared notion of simulated elapsed time.  With
    :meth:`deadline_scope` active on the calling thread, any charge that
    pushes the clock past the scope's deadline raises
    :class:`~repro.core.errors.DeadlineExceededError` — the mechanism
    that lets a query be abandoned *mid-I/O* instead of blocking.
    """

    io_cost_ns: int = DEFAULT_IO_COST_NS
    cache_blocks: int = 0
    injector: "FaultInjector | None" = None
    clock: "SimulatedClock | None" = None
    max_read_retries: int = DEFAULT_MAX_RETRIES
    backoff_base_ns: int = DEFAULT_BACKOFF_BASE_NS
    backoff_cap_ns: int = DEFAULT_BACKOFF_CAP_NS
    stats: IoStats = field(default_factory=IoStats)
    _cache: "OrderedDict[object, None]" = field(
        default_factory=OrderedDict, repr=False
    )
    _cache_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _blobs: "dict[str, bytes]" = field(default_factory=dict, repr=False)
    _blob_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _local: threading.local = field(
        default_factory=threading.local, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # simulated time & deadlines
    # ------------------------------------------------------------------
    def _charge(self, ns: int) -> None:
        """Advance the simulated clock and enforce the thread's deadline."""
        if self.clock is None:
            return
        now = self.clock.advance(ns)
        deadline = getattr(self._local, "deadline_ns", None)
        if deadline is not None and now > deadline:
            raise DeadlineExceededError(
                f"simulated clock {now} ns passed deadline {deadline} ns"
            )

    @contextmanager
    def deadline_scope(self, deadline_ns: "int | None"):
        """Install a per-thread absolute deadline on the simulated clock.

        Inside the scope, any :meth:`read` / backoff / blob read whose
        simulated-time charge pushes the shared clock past
        ``deadline_ns`` raises :class:`DeadlineExceededError` on this
        thread only.  ``None`` is a no-op scope (no budget).  Scopes
        nest; the inner scope wins until it exits.
        """
        prev = getattr(self._local, "deadline_ns", None)
        self._local.deadline_ns = deadline_ns
        try:
            yield
        finally:
            self._local.deadline_ns = prev

    # ------------------------------------------------------------------
    # second-level (data) reads and writes
    # ------------------------------------------------------------------
    def read(self, useful: bool, block: object | None = None) -> None:
        """Record one second-level read; ``useful`` = it found data.

        ``block`` is an opaque identity (e.g. ``(table_id, block_no)``)
        used by the LRU cache when enabled; reads without one bypass the
        cache.  A cache hit never touches the second level, so it can
        never raise; a miss consults the injector *before* it is counted
        or cached — a failed read is not a read, and its block is only
        cached once a retry succeeds.

        Raises
        ------
        TransientIOError
            When the injector decides this read fails; use
            :meth:`read_with_retry` for the standard retry policy.
        DeadlineExceededError
            When a clock is attached and this read's simulated cost
            pushes it past the calling thread's :meth:`deadline_scope`.
            The read has already been counted — the data arrived, just
            too late to matter.
        """
        sp = current_span()
        if self.cache_blocks > 0 and block is not None:
            with self._cache_lock:
                if block in self._cache:
                    self._cache.move_to_end(block)
                    self.stats.bump(cache_hits=1)
                    if sp is not None:
                        sp.add("io_cache_hits", 1)
                    return
        extra_ns = 0
        if self.injector is not None:
            try:
                self.injector.check_read("second-level read")
            except TransientIOError:
                self.stats.bump(transient_faults=1)
                if sp is not None:
                    sp.add("io_faults", 1)
                raise
            extra_ns = self.injector.read_latency_ns("second-level read")
        if self.cache_blocks > 0 and block is not None:
            with self._cache_lock:
                self._cache[block] = None
                if len(self._cache) > self.cache_blocks:
                    self._cache.popitem(last=False)
        if useful:
            self.stats.bump(reads=1, useful_reads=1)
        else:
            self.stats.bump(reads=1, wasted_reads=1)
        if extra_ns:
            self.stats.bump(slow_reads=1, slow_read_ns=extra_ns)
        if sp is not None:
            sp.add("io_reads", 1)
            if extra_ns:
                sp.add("io_slow_reads", 1)
        self._charge(self.io_cost_ns + extra_ns)

    def read_with_retry(
        self, useful: bool, block: object | None = None
    ) -> None:
        """:meth:`read` with the capped-exponential-backoff retry policy.

        Transient faults are retried up to ``max_read_retries`` times,
        sleeping ``min(backoff_base_ns << attempt, backoff_cap_ns)`` of
        *simulated* time before each retry (``stats.retries`` /
        ``stats.backoff_ns``).  Re-raises :class:`TransientIOError` only
        when the budget is exhausted.
        """
        attempt = 0
        while True:
            try:
                self.read(useful, block)
                return
            except TransientIOError:
                if attempt >= self.max_read_retries:
                    raise
                self._backoff(attempt)
                attempt += 1

    def write(self, entries: int = 0) -> None:
        """Record one second-level write (flush/compaction output).

        ``entries`` feeds the write-amplification accounting: the total
        entries (re)written across all flushes and compactions.
        """
        self.stats.bump(writes=1, entries_written=entries)

    # ------------------------------------------------------------------
    # blob store (persisted filter images)
    # ------------------------------------------------------------------
    def put_blob(self, name: str, data: bytes) -> int:
        """Persist a named blob; returns the number of bytes *stored*.

        The injector may tear the write (store a strict prefix) or flip
        one bit at rest; either way the damaged bytes are what later
        reads see, exactly like a real torn write or bit rot.  The
        caller's manifest should record the length/CRC of the *intended*
        bytes so damage is detectable.
        """
        stored = bytes(data)
        if self.injector is not None:
            stored, fault = self.injector.mangle_write(stored)
            if fault == "torn":
                self.stats.bump(torn_writes=1)
            elif fault == "flip":
                self.stats.bump(bit_flips=1)
        with self._blob_lock:
            self._blobs[name] = stored
        self.stats.bump(blob_writes=1)
        return len(stored)

    def get_blob(self, name: str) -> bytes:
        """Read a named blob (may raise a transient fault).

        Raises
        ------
        TransientIOError
            When the injector decides this read fails (retryable).
        FilterCorruptionError
            When no blob of that name exists (a lost write is
            corruption, not a retryable condition).
        """
        sp = current_span()
        extra_ns = 0
        if self.injector is not None:
            try:
                self.injector.check_read(f"blob read {name!r}")
            except TransientIOError:
                self.stats.bump(transient_faults=1)
                if sp is not None:
                    sp.add("io_faults", 1)
                raise
            extra_ns = self.injector.read_latency_ns(f"blob read {name!r}")
        with self._blob_lock:
            if name not in self._blobs:
                raise FilterCorruptionError(f"blob {name!r} does not exist")
            data = self._blobs[name]
        self.stats.bump(blob_reads=1)
        if sp is not None:
            sp.add("blob_reads", 1)
        if extra_ns:
            self.stats.bump(slow_reads=1, slow_read_ns=extra_ns)
        self._charge(self.io_cost_ns + extra_ns)
        return data

    def append_blob(self, name: str, suffix: bytes) -> int:
        """Append ``suffix`` to a named blob; returns total stored length.

        The append-only durability primitive (WAL segments): bytes
        already in the blob are never rewritten, so a fault can only
        damage the *new* suffix.  When the injector tears the append,
        the surviving prefix is stored and
        :class:`~repro.core.errors.TornAppendError` is raised — the
        caller must treat the appended records as unacknowledged (and a
        later replay truncates the torn tail).  A missing blob is
        created, so the first append opens the segment.
        """
        stored = bytes(suffix)
        torn = False
        if self.injector is not None:
            stored, torn = self.injector.mangle_append(stored)
        with self._blob_lock:
            self._blobs[name] = self._blobs.get(name, b"") + stored
            total = len(self._blobs[name])
        if torn:
            self.stats.bump(blob_appends=1, torn_appends=1)
            raise TornAppendError(
                f"append to blob {name!r} torn at {len(stored)}"
                f"/{len(suffix)} bytes"
            )
        self.stats.bump(blob_appends=1)
        return total

    def rename_blob(self, src: str, dst: str) -> None:
        """Atomically rename a blob (the checkpoint commit primitive).

        Pure metadata, done under the blob lock and never mangled by
        the injector — the same atomicity contract a POSIX ``rename(2)``
        gives, which is exactly what the checkpoint write protocol
        (write tmp, validate, rename into place) relies on.  Replaces
        ``dst`` if it exists.
        """
        with self._blob_lock:
            if src not in self._blobs:
                raise FilterCorruptionError(f"blob {src!r} does not exist")
            self._blobs[dst] = self._blobs.pop(src)
        self.stats.bump(blob_renames=1)

    def delete_blob(self, name: str, *, missing_ok: bool = True) -> bool:
        """Drop a named blob (WAL truncation, checkpoint pruning)."""
        with self._blob_lock:
            existed = self._blobs.pop(name, None) is not None
        if existed:
            self.stats.bump(blob_deletes=1)
        elif not missing_ok:
            raise FilterCorruptionError(f"blob {name!r} does not exist")
        return existed

    def list_blobs(self, prefix: str = "") -> list[str]:
        """Sorted names of stored blobs with the given prefix.

        Recovery discovers WAL segments and checkpoints with this —
        after a crash the in-memory objects are gone and the blob
        namespace is all that survives.
        """
        with self._blob_lock:
            return sorted(n for n in self._blobs if n.startswith(prefix))

    def blob_len(self, name: str) -> "int | None":
        """Stored length of a blob without charging a read (scrubbing)."""
        with self._blob_lock:
            data = self._blobs.get(name)
        return None if data is None else len(data)

    def rot_blob(self, name: str, bit: "int | None" = None) -> int:
        """Flip one bit of an already-stored blob (at-rest bit rot).

        ``bit`` defaults to a seeded draw from the injector's fault
        stream (an injector is then required), so chaos schedules place
        rot deterministically.  Returns the flipped bit index.  This is
        the fault the scrubber exists to catch: damage that no write
        path observed.
        """
        with self._blob_lock:
            data = self._blobs.get(name)
            if not data:
                raise FilterCorruptionError(
                    f"cannot rot empty or missing blob {name!r}"
                )
            if bit is None:
                if self.injector is None:
                    raise ValueError("rot_blob with bit=None needs an injector")
                bit = self.injector.rot_bit(len(data) * 8)
            if not 0 <= bit < len(data) * 8:
                raise ValueError(f"bit {bit} out of range for blob {name!r}")
            damaged = bytearray(data)
            damaged[bit // 8] ^= 1 << (bit % 8)
            self._blobs[name] = bytes(damaged)
        self.stats.bump(blob_rots=1)
        return bit

    def get_blob_with_retry(self, name: str) -> bytes:
        """:meth:`get_blob` under the standard retry/backoff policy."""
        attempt = 0
        while True:
            try:
                return self.get_blob(name)
            except TransientIOError:
                if attempt >= self.max_read_retries:
                    raise
                self._backoff(attempt)
                attempt += 1

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> None:
        """Charge one capped-exponential backoff sleep to simulated time.

        With a fault injector attached the delay is equal-jittered
        (seeded, deterministic) — a bare ``base << attempt`` schedule
        synchronises every caller that failed at the same instant into
        a retry stampede.  Without an injector there is no seeded RNG
        to draw from, so the delay stays exact.
        """
        delay = min(self.backoff_base_ns << attempt, self.backoff_cap_ns)
        if self.injector is not None:
            delay = self.injector.jitter_backoff(delay)
        self.stats.bump(retries=1, backoff_ns=delay)
        sp = current_span()
        if sp is not None:
            sp.add("io_retries", 1)
            sp.add("io_backoff_ns", delay)
        self._charge(delay)

    def simulated_io_seconds(self) -> float:
        """Total simulated second-level latency so far (incl. backoff)."""
        return (
            self.stats.reads * self.io_cost_ns
            + self.stats.backoff_ns
            + self.stats.slow_read_ns
        ) * 1e-9

    def overall_seconds(self, filter_seconds: float) -> float:
        """Overall time = measured first-level time + simulated I/O time."""
        return filter_seconds + self.simulated_io_seconds()

    def reset(self) -> None:
        """Zero the I/O counters and drop the block cache.

        Persisted blobs are *not* dropped — they are the simulated disk,
        and resetting the counters between measurement phases must not
        lose data (a block cached before the reset is simply re-read and
        counted exactly once after it).
        """
        self.stats.reset()
        with self._cache_lock:
            self._cache.clear()
