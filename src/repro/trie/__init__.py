"""Succinct trie substrate used by SuRF and Proteus: a rank/select bit
vector and a LOUDS-Sparse encoded byte trie (the FST of the SuRF paper)."""

from repro.trie.bitvector import BitVector
from repro.trie.fst import FastSuccinctTrie
from repro.trie.louds import LoudsSparseTrie, TrieStats

__all__ = ["BitVector", "FastSuccinctTrie", "LoudsSparseTrie", "TrieStats"]
