"""LOUDS-Sparse byte trie — the Fast Succinct Trie (FST) of SuRF.

The trie stores, for each key, the shortest byte-prefix that distinguishes
it from every other key (SuRF's pruning), encoded level-by-level in the
LOUDS-Sparse format:

* ``labels``  — one byte per edge, nodes in BFS order, edges sorted;
* ``has_child`` — bit per edge: 1 if the edge leads to an internal node,
  0 if it terminates in a (pruned) leaf;
* ``louds`` — bit per edge: 1 marks the first edge of each node.

Navigation uses the textbook identities: the child node of internal edge
``pos`` is node ``rank1(has_child, pos + 1)``; node ``n``'s edges start at
``select1(louds, n + 1)``.  Leaf edge ``pos`` owns value slot
``pos - rank1(has_child, pos)`` — the per-key suffix records of SuRF live
in arrays indexed by that slot.

The *successor* operation (``lower_bound``) keeps an explicit descent
stack instead of parent pointers, exactly like SuRF's iterator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.trie.bitvector import BitVector

__all__ = ["LoudsSparseTrie", "TrieStats"]


@dataclass(frozen=True)
class TrieStats:
    """Construction statistics of a LOUDS trie."""

    n_keys: int
    n_edges: int
    n_internal: int
    n_leaves: int
    max_depth: int


class LoudsSparseTrie:
    """Pruned byte trie over fixed-width keys, LOUDS-Sparse encoded.

    Parameters
    ----------
    keys:
        Sorted, de-duplicated uint64 array.
    key_bytes:
        Fixed key width in bytes (8 for 64-bit keys).
    root_ranges:
        Optional forest roots as ``(lo, hi, depth)`` key-index ranges —
        used by the LOUDS-Dense/Sparse hybrid (:mod:`repro.trie.fst`),
        whose dense head hands each cutoff-depth subtree to this sparse
        encoding.  Default: the single whole-tree root.
    """

    def __init__(
        self,
        keys: np.ndarray,
        key_bytes: int = 8,
        root_ranges: "list[tuple[int, int, int]] | None" = None,
    ) -> None:
        if not 1 <= key_bytes <= 8:
            raise ValueError(f"key_bytes must be in [1, 8], got {key_bytes}")
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size > 1 and not (keys[1:] > keys[:-1]).all():
            raise ValueError("keys must be sorted and unique")
        self.key_bytes = key_bytes
        self.n_keys = int(keys.size)
        self._keys_matrix = self._to_bytes(keys)
        if root_ranges is None:
            root_ranges = [(0, self.n_keys, 0)] if self.n_keys else []
        if any(lo >= hi for lo, hi, _ in root_ranges):
            raise ValueError("root ranges must be non-empty")
        self.n_roots = max(1, len(root_ranges))
        self._root_ranges = root_ranges
        labels, has_child, louds, leaf_key_idx, max_depth = self._build()
        self.labels = labels
        self.has_child = BitVector(has_child)
        self.louds = BitVector(louds)
        #: index into the original key array for each leaf slot.
        self.leaf_key_idx = leaf_key_idx
        #: byte-depth of each leaf's stored prefix (depth of its edge + 1).
        self.leaf_depth = self._leaf_depths(max_depth)
        self.stats = TrieStats(
            n_keys=self.n_keys,
            n_edges=int(labels.size),
            n_internal=self.has_child.ones,
            n_leaves=int(labels.size) - self.has_child.ones,
            max_depth=max_depth,
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _to_bytes(self, keys: np.ndarray) -> np.ndarray:
        """(n, key_bytes) uint8 matrix, most-significant byte first."""
        if keys.size == 0:
            return np.zeros((0, self.key_bytes), dtype=np.uint8)
        full = keys.astype(">u8").view(np.uint8).reshape(-1, 8)
        return full[:, 8 - self.key_bytes :]

    def _build(self):
        """BFS over key ranges; each range sharing ``depth`` bytes is a node."""
        mat = self._keys_matrix
        labels: list[int] = []
        has_child: list[int] = []
        louds: list[int] = []
        leaf_key_idx: list[int] = []
        depth_of_edge: list[int] = []
        max_depth = 0
        if self.n_keys:
            queue: list[tuple[int, int, int]] = list(self._root_ranges)
            head = 0
            while head < len(queue):
                lo, hi, depth = queue[head]
                head += 1
                max_depth = max(max_depth, depth + 1)
                col = mat[lo:hi, depth]
                # Group the sorted range by its byte at this depth.
                boundaries = np.flatnonzero(np.diff(col)) + 1
                starts = np.concatenate(([0], boundaries)) + lo
                ends = np.concatenate((boundaries, [hi - lo])) + lo
                first = True
                for s, e in zip(starts, ends):
                    labels.append(int(mat[s, depth]))
                    louds.append(1 if first else 0)
                    first = False
                    depth_of_edge.append(depth)
                    if e - s > 1:
                        if depth + 1 >= self.key_bytes:
                            raise AssertionError(
                                "duplicate keys survived deduplication"
                            )
                        has_child.append(1)
                        queue.append((s, e, depth + 1))
                    else:
                        has_child.append(0)
                        leaf_key_idx.append(s)
        self._edge_depth = np.array(depth_of_edge, dtype=np.int16)
        return (
            np.array(labels, dtype=np.uint8),
            np.array(has_child, dtype=np.uint8),
            np.array(louds, dtype=np.uint8),
            np.array(leaf_key_idx, dtype=np.int64),
            max_depth,
        )

    def _leaf_depths(self, max_depth: int) -> np.ndarray:
        """Stored-prefix byte length for each leaf slot."""
        depths = []
        for pos in range(len(self.labels)):
            if not self.has_child[pos]:
                depths.append(int(self._edge_depth[pos]) + 1)
        return np.array(depths, dtype=np.int16)

    # ------------------------------------------------------------------
    # navigation primitives
    # ------------------------------------------------------------------
    def node_edges(self, node: int) -> tuple[int, int]:
        """Half-open edge range ``[start, end)`` of node ``node``."""
        start = self.louds.select1(node + 1)
        if node + 2 <= self.louds.ones:
            end = self.louds.select1(node + 2)
        else:
            end = len(self.labels)
        return start, end

    def child_node(self, pos: int) -> int:
        """Node reached through internal edge ``pos``.

        Nodes are numbered in BFS order: the forest roots first, then one
        node per internal edge; with a single root this is the textbook
        ``rank1(has_child, pos + 1)``.
        """
        return self.n_roots - 1 + self.has_child.rank1(pos + 1)

    def leaf_slot(self, pos: int) -> int:
        """Value-array slot of leaf edge ``pos``."""
        return pos - self.has_child.rank1(pos)

    def find_edge(self, node: int, label: int) -> int:
        """Edge position of ``label`` in ``node``, or -1."""
        start, end = self.node_edges(node)
        i = start + int(
            np.searchsorted(self.labels[start:end], np.uint8(label))
        )
        if i < end and self.labels[i] == label:
            return i
        return -1

    def find_edge_geq(self, node: int, label: int) -> int:
        """Position of the smallest edge with label >= ``label``, or -1."""
        start, end = self.node_edges(node)
        i = start + int(
            np.searchsorted(self.labels[start:end], np.uint8(label))
        )
        return i if i < end else -1

    # ------------------------------------------------------------------
    # key operations
    # ------------------------------------------------------------------
    def lookup_prefix(self, key_bytes: bytes, node: int = 0,
                      start_depth: int = 0) -> int:
        """Leaf slot whose stored prefix is a prefix of ``key_bytes``; -1 if
        the trie proves no stored key can match.

        ``node``/``start_depth`` let the LOUDS-Dense head hand over a
        descent mid-key.
        """
        if self.n_keys == 0:
            return -1
        for depth in range(start_depth, self.key_bytes):
            pos = self.find_edge(node, key_bytes[depth])
            if pos < 0:
                return -1
            if not self.has_child[pos]:
                return self.leaf_slot(pos)
            node = self.child_node(pos)
        raise AssertionError("descended past fixed key width")

    def min_leaf_from(self, pos: int) -> int:
        """Leaf slot of the smallest key below edge ``pos``."""
        while self.has_child[pos]:
            start, _ = self.node_edges(self.child_node(pos))
            pos = start
        return self.leaf_slot(pos)

    def lower_bound_leaf(self, key_bytes: bytes, reject=None,
                         node: int = 0, start_depth: int = 0) -> tuple[int, bool]:
        """SuRF's ``moveToKeyGreaterThan``: the first candidate at/after key.

        Returns ``(leaf_slot, ambiguous)``; slot is -1 when every stored
        key's prefix is certainly below ``key_bytes``.  ``ambiguous`` is
        True when the leaf's stored prefix is a *prefix of the search key*,
        so the full stored key could be on either side — the caller refines
        with suffix bits or answers conservatively (SuRF's false-positive
        mechanism).

        ``reject``, if given, is called on an ambiguous leaf slot; returning
        True means the caller's suffix bits prove the stored key is below
        the search key, and the search advances to the next leaf — the
        equivalent of SuRF's iterator ``operator++`` after a suffix
        comparison.
        """
        if self.n_keys == 0:
            return -1, False
        # Descent stack of (node, edge_pos) lets us backtrack like SuRF's
        # iterator, without parent pointers.
        stack: list[tuple[int, int]] = []
        depth = start_depth
        while True:
            pos = self.find_edge_geq(node, key_bytes[depth])
            if pos >= 0 and self.labels[pos] == key_bytes[depth]:
                if not self.has_child[pos]:
                    slot = self.leaf_slot(pos)
                    if reject is None or not reject(slot):
                        return slot, True
                    # Suffix proved this key < search key: advance to the
                    # next edge of the current node, or backtrack.
                    _, end = self.node_edges(node)
                    if pos + 1 < end:
                        return self.min_leaf_from(pos + 1), False
                else:
                    stack.append((node, pos))
                    node = self.child_node(pos)
                    depth += 1
                    continue
            elif pos >= 0:
                return self.min_leaf_from(pos), False
            # Backtrack: find an ancestor with a next-larger sibling edge.
            while stack:
                node, taken = stack.pop()
                _, end = self.node_edges(node)
                if taken + 1 < end:
                    return self.min_leaf_from(taken + 1), False
            return -1, False

    def leaf_prefix_value(self, slot: int) -> int:
        """Stored prefix of a leaf, zero-extended to a full-width integer."""
        idx = int(self.leaf_key_idx[slot])
        depth = int(self.leaf_depth[slot])
        row = self._keys_matrix[idx]
        value = 0
        for b in range(self.key_bytes):
            value = (value << 8) | (int(row[b]) if b < depth else 0)
        return value

    def iter_leaves(self) -> Iterator[int]:
        """Leaf slots in edge-position (BFS) order."""
        for slot in range(len(self.leaf_key_idx)):
            yield slot

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Succinct size: 8 bits/label + the two bit vectors."""
        return (
            8 * len(self.labels)
            + self.has_child.size_in_bits()
            + self.louds.size_in_bits()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats
        return (
            f"LoudsSparseTrie(keys={s.n_keys}, edges={s.n_edges}, "
            f"leaves={s.n_leaves}, depth={s.max_depth})"
        )
