"""Static bit vector with O(1)-style rank and O(log n) select.

The building block of LOUDS-encoded succinct tries (SuRF's FST).  Built
once from a boolean/uint8 array, then immutable.  Rank uses a per-word
cumulative popcount directory; select binary-searches the same directory
and scans the final word.

``size_in_bits`` reports the *succinct* cost — the raw bits plus the
standard ~6.25% rank-directory overhead a C++ implementation pays — rather
than the numpy bookkeeping of this reproduction, so SuRF's bits-per-key
accounting matches the paper's.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitVector"]

#: Directory overhead charged per raw bit (rank + select samples), matching
#: the accounting in the SuRF paper.
SUCCINCT_OVERHEAD = 0.0625


class BitVector:
    """Immutable bit vector with rank1/rank0/select1 support."""

    def __init__(self, bits: np.ndarray) -> None:
        bits = np.asarray(bits).astype(np.uint8)
        if bits.ndim != 1:
            raise ValueError("bits must be one-dimensional")
        if bits.size and bits.max() > 1:
            raise ValueError("bits must be 0/1 valued")
        self.n = int(bits.size)
        padded = np.zeros(((self.n + 63) // 64) * 64, dtype=np.uint8)
        padded[: self.n] = bits
        self._words = np.packbits(
            padded.reshape(-1, 64), axis=1, bitorder="little"
        ).view("<u8").reshape(-1)
        counts = np.bitwise_count(self._words).astype(np.int64)
        # _cum[i] = number of ones in words[0 : i]
        self._cum = np.zeros(len(self._words) + 1, dtype=np.int64)
        np.cumsum(counts, out=self._cum[1:])
        self.ones = int(self._cum[-1])
        self._bits = bits  # kept for cheap __getitem__ / iteration

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self.n:
            raise IndexError(f"bit index {i} out of range [0, {self.n})")
        return int(self._bits[i])

    def rank1(self, i: int) -> int:
        """Number of 1 bits in positions ``[0, i)``."""
        if not 0 <= i <= self.n:
            raise IndexError(f"rank index {i} out of range [0, {self.n}]")
        word, rem = divmod(i, 64)
        count = int(self._cum[word])
        if rem:
            mask = (1 << rem) - 1
            count += int(np.bitwise_count(self._words[word] & np.uint64(mask)))
        return count

    def rank0(self, i: int) -> int:
        """Number of 0 bits in positions ``[0, i)``."""
        return i - self.rank1(i)

    def select1(self, j: int) -> int:
        """Position of the ``j``-th 1 bit, 1-indexed.

        ``select1(rank1(i) + 1) >= i`` for any position ``i`` with a later
        one; raises if fewer than ``j`` ones exist.
        """
        if not 1 <= j <= self.ones:
            raise IndexError(f"select index {j} out of range [1, {self.ones}]")
        word = int(np.searchsorted(self._cum, j, side="left")) - 1
        remaining = j - int(self._cum[word])
        bits = int(self._words[word])
        pos = word * 64
        while True:
            low = bits & -bits
            remaining -= 1
            if remaining == 0:
                return pos + low.bit_length() - 1
            bits ^= low

    def size_in_bits(self) -> int:
        """Succinct-accounting size: raw bits + directory overhead."""
        return int(self.n * (1 + SUCCINCT_OVERHEAD))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BitVector(n={self.n}, ones={self.ones})"
