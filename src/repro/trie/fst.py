"""Fast Succinct Trie — SuRF's LOUDS-Dense/Sparse hybrid.

The SuRF paper encodes the pruned trie in two regimes:

* **LOUDS-Dense** for the top levels, where nodes are few and hot: each
  node is a pair of 256-bit bitmaps — ``D-Labels`` (which byte edges
  exist) and ``D-HasChild`` (which lead to internal nodes) — giving
  rank-based O(1) navigation at 512 bits per node;
* **LOUDS-Sparse** below the cutoff: byte labels plus two bit vectors at
  ~10.6 bits per edge (:class:`repro.trie.louds.LoudsSparseTrie`).

The cutoff follows SuRF's size rule: dense levels are admitted while
``dense_bits × dense_ratio ≤ total_sparse_bits_estimate`` (SuRF default
ratio 16 — dense head capped at 1/16 of the sparse body).

The two regimes are glued by the sparse trie's forest support: every
cutoff-depth subtree becomes a sparse root, and the dense child rank
directly indexes that root list.  Leaf handles are ``(key_index,
prefix_depth_bytes)`` pairs in both regimes, so SuRF's suffix logic works
unchanged over either backing trie.
"""

from __future__ import annotations

import numpy as np

from repro.trie.bitvector import BitVector
from repro.trie.louds import LoudsSparseTrie, TrieStats

__all__ = ["FastSuccinctTrie"]

#: Cost of one LOUDS-Dense node: two 256-bit bitmaps (+ rank overhead is
#: charged by BitVector.size_in_bits on the packed vectors).
_DENSE_NODE_BITS = 512


class FastSuccinctTrie:
    """LOUDS-DS encoded pruned trie over fixed-width integer keys."""

    def __init__(
        self,
        keys: np.ndarray,
        key_bytes: int = 8,
        dense_ratio: int = 16,
    ) -> None:
        if dense_ratio < 1:
            raise ValueError(f"dense_ratio must be >= 1, got {dense_ratio}")
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size > 1 and not (keys[1:] > keys[:-1]).all():
            raise ValueError("keys must be sorted and unique")
        self.key_bytes = key_bytes
        self.n_keys = int(keys.size)
        self.dense_ratio = dense_ratio
        self._keys = keys
        if keys.size == 0:
            full = np.zeros((0, 8), dtype=np.uint8)
        else:
            full = keys.astype(">u8").view(np.uint8).reshape(-1, 8)
        self._matrix = full[:, 8 - key_bytes:] if keys.size else full

        self.cutoff = self._choose_cutoff()
        self._build_dense()
        self.sparse = (
            LoudsSparseTrie(
                keys, key_bytes=key_bytes, root_ranges=self._sparse_roots
            )
            if self._sparse_roots
            else None
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _node_ranges_at(self, depth: int) -> list[tuple[int, int]]:
        """Key-index ranges sharing their first ``depth`` bytes."""
        if self.n_keys == 0:
            return []
        if depth == 0:
            return [(0, self.n_keys)]
        cols = self._matrix[:, :depth]
        change = np.any(cols[1:] != cols[:-1], axis=1)
        boundaries = np.flatnonzero(change) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [self.n_keys]))
        return list(zip(starts.tolist(), ends.tolist()))

    def _choose_cutoff(self) -> int:
        """SuRF's rule: grow the dense head while it stays small."""
        if self.n_keys == 0:
            return 0
        # Sparse cost of the whole trie (rough, proportional): edges ~
        # distinct prefixes per depth.
        total_edges = 0
        internal_per_depth = []
        for depth in range(self.key_bytes):
            ranges = self._node_ranges_at(depth + 1)
            total_edges += len(ranges)
            internal = sum(1 for lo, hi in ranges if hi - lo > 1)
            internal_per_depth.append(internal)
            if internal == 0:
                break
        sparse_bits = 10.625 * total_edges
        cutoff = 0
        dense_nodes = 0
        # Nodes at depth d = internal ranges at depth d (multi-key groups).
        for depth in range(len(internal_per_depth)):
            nodes_here = (
                1 if depth == 0
                else internal_per_depth[depth - 1]
            )
            dense_nodes += nodes_here
            if dense_nodes * _DENSE_NODE_BITS * self.dense_ratio > sparse_bits:
                break
            cutoff = depth + 1
        return cutoff

    def _build_dense(self) -> None:
        """BFS over depths [0, cutoff): one 256-bit bitmap pair per node."""
        labels_words: list[int] = []
        child_words: list[int] = []
        self._dense_leaf_key_idx: list[int] = []
        self._dense_leaf_depth: list[int] = []
        self._sparse_roots: list[tuple[int, int, int]] = []
        if self.n_keys == 0 or self.cutoff == 0:
            self.n_dense_nodes = 0
            self._d_labels = BitVector(np.zeros(0, dtype=np.uint8))
            self._d_haschild = BitVector(np.zeros(0, dtype=np.uint8))
            if self.n_keys:
                self._sparse_roots = [(0, self.n_keys, 0)]
            return

        queue: list[tuple[int, int, int]] = [(0, self.n_keys, 0)]
        head = 0
        label_bits: list[np.ndarray] = []
        child_bits: list[np.ndarray] = []
        while head < len(queue):
            lo, hi, depth = queue[head]
            head += 1
            lab = np.zeros(256, dtype=np.uint8)
            chd = np.zeros(256, dtype=np.uint8)
            col = self._matrix[lo:hi, depth]
            boundaries = np.flatnonzero(np.diff(col)) + 1
            starts = np.concatenate(([0], boundaries)) + lo
            ends = np.concatenate((boundaries, [hi - lo])) + lo
            for s, e in zip(starts.tolist(), ends.tolist()):
                byte = int(self._matrix[s, depth])
                lab[byte] = 1
                if e - s > 1:
                    chd[byte] = 1
                    if depth + 1 < self.cutoff:
                        queue.append((s, e, depth + 1))
                    else:
                        self._sparse_roots.append((s, e, depth + 1))
                else:
                    self._dense_leaf_key_idx.append(s)
                    self._dense_leaf_depth.append(depth + 1)
            label_bits.append(lab)
            child_bits.append(chd)
        self.n_dense_nodes = len(label_bits)
        self._d_labels = BitVector(np.concatenate(label_bits))
        self._d_haschild = BitVector(np.concatenate(child_bits))
        # Dense child rank -> either another dense node or a sparse root.
        # Dense nodes are numbered in BFS order; children created before
        # the cutoff keep dense ids, the rest index _sparse_roots in the
        # same rank order.  Because BFS visits depths in order, all dense
        # children precede all sparse roots in creation order only within
        # a depth — so record an explicit mapping instead.
        self._child_map: list[tuple[str, int]] = []
        dense_next = 1
        sparse_next = 0
        head = 0
        # Re-walk creation order to rebuild the mapping deterministically.
        queue2: list[tuple[int, int, int]] = [(0, self.n_keys, 0)]
        while head < len(queue2):
            lo, hi, depth = queue2[head]
            head += 1
            col = self._matrix[lo:hi, depth]
            boundaries = np.flatnonzero(np.diff(col)) + 1
            starts = np.concatenate(([0], boundaries)) + lo
            ends = np.concatenate((boundaries, [hi - lo])) + lo
            for s, e in zip(starts.tolist(), ends.tolist()):
                if e - s > 1:
                    if depth + 1 < self.cutoff:
                        self._child_map.append(("dense", dense_next))
                        dense_next += 1
                        queue2.append((s, e, depth + 1))
                    else:
                        self._child_map.append(("sparse", sparse_next))
                        sparse_next += 1

    # ------------------------------------------------------------------
    # dense navigation
    # ------------------------------------------------------------------
    def _dense_edge(self, node: int, byte: int) -> int:
        return node * 256 + byte

    def _dense_has_label(self, node: int, byte: int) -> bool:
        return self._d_labels[self._dense_edge(node, byte)] == 1

    def _dense_child(self, node: int, byte: int) -> tuple[str, int]:
        """('dense', node) or ('sparse', root_index) through an edge."""
        rank = self._d_haschild.rank1(self._dense_edge(node, byte) + 1)
        return self._child_map[rank - 1]

    def _dense_leaf_slot(self, node: int, byte: int) -> int:
        pos = self._dense_edge(node, byte) + 1
        return self._d_labels.rank1(pos) - self._d_haschild.rank1(pos) - 1

    def _dense_next_label(self, node: int, byte: int) -> int:
        """Smallest existing label >= byte in a dense node, else -1."""
        base = node * 256
        for b in range(byte, 256):
            if self._d_labels[base + b]:
                return b
        return -1

    def _dense_min_leaf(self, node: int, byte: int):
        """Leaf handle of the smallest key under dense edge (node, byte)."""
        while True:
            if not self._d_haschild[self._dense_edge(node, byte)]:
                slot = self._dense_leaf_slot(node, byte)
                return (
                    self._dense_leaf_key_idx[slot],
                    self._dense_leaf_depth[slot],
                )
            kind, target = self._dense_child(node, byte)
            if kind == "sparse":
                start, _ = self.sparse.node_edges(target)
                slot = self.sparse.min_leaf_from(start)
                return (
                    int(self.sparse.leaf_key_idx[slot]),
                    int(self.sparse.leaf_depth[slot]),
                )
            node = target
            byte = self._dense_next_label(node, 0)

    # ------------------------------------------------------------------
    # public interface (shared with LoudsSparseTrie via SuRF)
    # ------------------------------------------------------------------
    def lookup(self, key_bytes: bytes):
        """``(key_index, prefix_depth)`` of the matching pruned leaf, or
        None when the trie proves no stored key matches."""
        if self.n_keys == 0:
            return None
        node = 0
        for depth in range(self.cutoff):
            byte = key_bytes[depth]
            if not self._dense_has_label(node, byte):
                return None
            if not self._d_haschild[self._dense_edge(node, byte)]:
                slot = self._dense_leaf_slot(node, byte)
                return (
                    self._dense_leaf_key_idx[slot],
                    self._dense_leaf_depth[slot],
                )
            kind, target = self._dense_child(node, byte)
            if kind == "sparse":
                slot = self.sparse.lookup_prefix(
                    key_bytes, node=target, start_depth=depth + 1
                )
                if slot < 0:
                    return None
                return (
                    int(self.sparse.leaf_key_idx[slot]),
                    int(self.sparse.leaf_depth[slot]),
                )
            node = target
        # cutoff == 0 (or dense exhausted at the root): pure sparse.
        slot = self.sparse.lookup_prefix(key_bytes)
        if slot < 0:
            return None
        return (
            int(self.sparse.leaf_key_idx[slot]),
            int(self.sparse.leaf_depth[slot]),
        )

    def lower_bound(self, key_bytes: bytes, reject=None):
        """First pruned leaf at/after ``key_bytes``.

        Returns ``(key_index, prefix_depth, ambiguous)`` or None.
        ``reject(key_index, depth)`` may veto an ambiguous leaf, advancing
        the search (suffix-comparison semantics, as in the sparse trie).
        """
        if self.n_keys == 0:
            return None
        if self.cutoff == 0:
            return self._sparse_lower(key_bytes, reject, 0, 0)
        stack: list[tuple[int, int]] = []
        node = 0
        depth = 0
        byte = key_bytes[0]
        while True:
            nxt = self._dense_next_label(node, byte)
            if nxt == byte:
                edge = self._dense_edge(node, byte)
                if not self._d_haschild[edge]:
                    slot = self._dense_leaf_slot(node, byte)
                    handle = (
                        self._dense_leaf_key_idx[slot],
                        self._dense_leaf_depth[slot],
                    )
                    if reject is None or not reject(*handle):
                        return handle[0], handle[1], True
                    nxt = self._dense_next_label(node, byte + 1)
                else:
                    kind, target = self._dense_child(node, byte)
                    if kind == "sparse":
                        result = self._sparse_lower(
                            key_bytes, reject, target, depth + 1
                        )
                        if result is not None:
                            return result
                        nxt = self._dense_next_label(node, byte + 1)
                    else:
                        stack.append((node, byte))
                        node = target
                        depth += 1
                        byte = key_bytes[depth]
                        continue
            if nxt >= 0 and nxt != byte:
                idx, d = self._dense_min_leaf(node, nxt)
                return idx, d, False
            # Backtrack to an ancestor with a larger sibling.
            while stack:
                node, taken = stack.pop()
                depth -= 1
                sibling = self._dense_next_label(node, taken + 1)
                if sibling >= 0:
                    idx, d = self._dense_min_leaf(node, sibling)
                    return idx, d, False
            return None

    def _sparse_lower(self, key_bytes, reject, root, depth):
        sparse_reject = None
        if reject is not None:
            def sparse_reject(slot):
                return reject(
                    int(self.sparse.leaf_key_idx[slot]),
                    int(self.sparse.leaf_depth[slot]),
                )
        slot, ambiguous = self.sparse.lower_bound_leaf(
            key_bytes, reject=sparse_reject, node=root, start_depth=depth
        )
        if slot < 0:
            return None
        return (
            int(self.sparse.leaf_key_idx[slot]),
            int(self.sparse.leaf_depth[slot]),
            ambiguous,
        )

    def prefix_value(self, key_idx: int, depth: int) -> int:
        """Stored prefix of a pruned leaf, zero-extended to full width."""
        mask_bits = 8 * (self.key_bytes - depth)
        value = int(self._keys[key_idx])
        return value >> mask_bits << mask_bits if mask_bits else value

    # ------------------------------------------------------------------
    # accounting / stats
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Succinct size: dense bitmaps plus the sparse body."""
        dense = self._d_labels.size_in_bits() + self._d_haschild.size_in_bits()
        sparse = self.sparse.size_in_bits() if self.sparse else 0
        return dense + sparse

    @property
    def stats(self) -> TrieStats:
        sparse_stats = (
            self.sparse.stats if self.sparse
            else TrieStats(0, 0, 0, 0, 0)
        )
        dense_edges = self._d_labels.ones
        dense_leaves = len(self._dense_leaf_key_idx)
        return TrieStats(
            n_keys=self.n_keys,
            n_edges=dense_edges + sparse_stats.n_edges,
            n_internal=self._d_haschild.ones + sparse_stats.n_internal,
            n_leaves=dense_leaves + sparse_stats.n_leaves,
            max_depth=max(self.cutoff, sparse_stats.max_depth),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FastSuccinctTrie(keys={self.n_keys}, cutoff={self.cutoff}, "
            f"dense_nodes={self.n_dense_nodes}, bits={self.size_in_bits()})"
        )
