#!/usr/bin/env python
"""CI perf gate: fresh bench headline vs the committed trajectory.

Compares the headline throughput in a freshly generated
``BENCH_batch_query.json`` against the newest ``BENCH_trajectory.jsonl``
row for the same (bench, preset) from a *different* commit — the last
committed measurement.  Fails (exit 1) when the fresh number drops below
``baseline * (1 - tolerance)``.

The tolerance band is deliberately wide (default 0.35): CI runners are
shared and noisy, and the gate exists to catch order-of-magnitude
regressions (a kernel silently falling back to the legacy path, an
accidental O(n^2) in the descent), not 5%% jitter.  When the trajectory
has no comparable row — first run on a fresh clone, or a brand-new
preset — the gate passes trivially and says so.

Usage (what ``make bench-kernels`` and the CI perf job run)::

    python benchmarks/bench_batch_query.py --preset smoke
    python scripts/check_perf_regression.py --preset smoke

Other benches gate through the same script by naming their headline:
``--metric`` is a dotted path into the fresh JSON resolving to the
kq/s figure the trajectory row recorded (what ``make bench-cluster``
runs)::

    python benchmarks/bench_cluster.py --preset smoke
    python scripts/check_perf_regression.py --json BENCH_cluster.json \
        --bench cluster --metric headline.kqps
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_baseline(
    trajectory: Path, bench: str, preset: str, git_rev: str
) -> "dict | None":
    """Newest trajectory row for (bench, preset) not from ``git_rev``."""
    if not trajectory.exists():
        return None
    baseline = None
    for line in trajectory.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if row.get("bench") != bench or row.get("preset") != preset:
            continue
        if row.get("git_rev") == git_rev:
            continue  # same commit: that's this run's own row, not a baseline
        baseline = row  # file is append-ordered; keep the newest match
    return baseline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        type=Path,
        default=REPO_ROOT / "BENCH_batch_query.json",
        help="fresh bench result to check (default: BENCH_batch_query.json)",
    )
    parser.add_argument(
        "--trajectory",
        type=Path,
        default=REPO_ROOT / "BENCH_trajectory.jsonl",
        help="committed headline history (default: BENCH_trajectory.jsonl)",
    )
    parser.add_argument("--bench", default="batch_query")
    parser.add_argument(
        "--metric",
        default="batch.kqps",
        help="dotted path to the fresh result's headline kq/s "
        "(default: batch.kqps)",
    )
    parser.add_argument(
        "--preset",
        default=None,
        help="trajectory preset to compare against (default: the fresh "
        "result's own preset)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="allowed fractional drop vs baseline (default: 0.35)",
    )
    args = parser.parse_args(argv)

    if not args.json.exists():
        print(f"perf gate: FAIL — no fresh result at {args.json}")
        print("run `python benchmarks/bench_batch_query.py` first")
        return 1
    fresh = json.loads(args.json.read_text())
    preset = args.preset or fresh.get("preset", "smoke")
    node = fresh
    for part in args.metric.split("."):
        node = node[part]
    kqps = float(node)
    git_rev = fresh.get("meta", {}).get("git_rev", "unknown")

    # Correctness stamps ride in the payload under bench-specific names;
    # any that are present must be truthy for the numbers to count.
    for stamp in ("equivalent", "zero_false_negatives"):
        if stamp in fresh and not fresh[stamp]:
            print(f"perf gate: FAIL — fresh run reports {stamp}: false")
            return 1

    baseline = load_baseline(args.trajectory, args.bench, preset, git_rev)
    if baseline is None:
        print(
            f"perf gate: PASS (trivially) — no committed baseline for "
            f"bench={args.bench} preset={preset} from another commit; "
            f"fresh headline {kqps} kq/s recorded"
        )
        return 0

    floor = float(baseline["kqps"]) * (1.0 - args.tolerance)
    verdict = "PASS" if kqps >= floor else "FAIL"
    print(
        f"perf gate: {verdict} — {args.bench}/{preset}: fresh {kqps} kq/s "
        f"({fresh.get('engine', '?')}) vs baseline {baseline['kqps']} kq/s "
        f"({baseline.get('engine', '?')} @ {baseline.get('git_rev', '?')}), "
        f"floor {floor:.1f} kq/s (tolerance {args.tolerance:.0%})"
    )
    return 0 if verdict == "PASS" else 1


if __name__ == "__main__":
    sys.exit(main())
